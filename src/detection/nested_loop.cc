// Copyright 2026 The DOD Authors.

#include "detection/nested_loop.h"

#include "common/random.h"
#include "kernels/distance_kernels.h"
#include "kernels/soa_block.h"
#include "observability/metrics.h"

namespace dod {
namespace {

void RecordNestedLoop(Counters* counters, uint64_t distance_evals) {
  if (counters != nullptr) {
    counters->Increment("nested_loop.distance_evals", distance_evals);
  }
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static const uint32_t kCalls =
      metrics.Id("detect.calls.nested_loop", MetricKind::kCounter);
  static const uint32_t kPairs =
      metrics.Id("detect.pairs.nested_loop", MetricKind::kCounter);
  metrics.Increment(kCalls);
  metrics.Increment(kPairs, distance_evals);
}

}  // namespace

std::vector<uint32_t> NestedLoopDetector::DetectOutliers(
    const Dataset& points, size_t num_core, const DetectionParams& params,
    Counters* counters) const {
  DOD_CHECK(num_core <= points.size());
  const int dims = points.dims();
  const size_t n = points.size();
  std::vector<uint32_t> outliers;
  if (n == 0) return outliers;

  // "Evaluate ... in random order" is realized the way a scan over
  // randomly-stored data does it: the points are materialized once in a
  // random permutation and each probe sequence is a linear scan of that
  // buffer from a per-point random offset. One O(n) copy up front buys
  // sequential (cache-friendly) probing, and the shared permutation matches
  // the Lemma 4.1 cost model's independence assumption. The probe buffer is
  // a blocked SoA so the kernels count kSoaWidth candidates per step; each
  // slot keeps its point's original id, so self-matches are skipped by id
  // (a duplicate coordinate pair is still a genuine neighbor).
  Rng rng(params.seed);
  const std::vector<uint32_t> order = RandomPermutation(n, rng);
  SoABlock probes(dims);
  probes.AssignPermuted(points, order);

  const double sq_radius = params.radius * params.radius;
  const int k = params.min_neighbors;
  const KernelOps& ops = GetKernelOps(params.kernels);
  uint64_t distance_evals = 0;
  for (uint32_t i = 0; i < num_core; ++i) {
    const double* p = points[i];
    const size_t start = rng.NextBounded(n);
    // Two sequential sweeps: [start, n) then [0, start). The kernels stop
    // as soon as k neighbors are confirmed; if neither sweep reaches k the
    // counts are exact, so the verdict matches the per-pair scan exactly.
    int neighbors = ops.count_within_radius(probes, start, n, p, sq_radius,
                                            /*skip_id=*/i, k,
                                            &distance_evals);
    if (neighbors < k) {
      neighbors += ops.count_within_radius(probes, 0, start, p, sq_radius,
                                           /*skip_id=*/i, k - neighbors,
                                           &distance_evals);
    }
    if (neighbors < k) outliers.push_back(i);
  }
  RecordNestedLoop(counters, distance_evals);
  return outliers;
}

std::vector<uint32_t> NestedLoopDetector::DetectOutliers(
    const PartitionView& partition, const DetectionParams& params,
    Counters* counters) const {
  if (!partition.has_probes()) {
    // No shared probe segment to sweep: materialize and run the classic
    // path (or, for identity views, run it directly with zero overhead).
    return Detector::DetectOutliers(partition, params, counters);
  }
  const size_t n = partition.size();
  const size_t num_core = partition.num_core();
  std::vector<uint32_t> outliers;
  if (n == 0) return outliers;

  // The arena already laid this cell's points out in a random permutation
  // (slot ids = local indices), so the per-point probe sequence is a linear
  // sweep of the shared segment from a random start — same access pattern
  // as the classic path, minus the private buffer build. Only the start
  // offsets are drawn here; the permutation came from the arena's salted
  // seed, keeping the two random streams independent.
  Rng rng(params.seed);
  const SoABlock& probes = partition.probes();
  const size_t begin = partition.probe_begin();
  const size_t end = partition.probe_end();
  const double sq_radius = params.radius * params.radius;
  const int k = params.min_neighbors;
  const KernelOps& ops = GetKernelOps(params.kernels);
  uint64_t distance_evals = 0;
  for (uint32_t i = 0; i < num_core; ++i) {
    const double* p = partition.point(i);
    const size_t start = begin + rng.NextBounded(n);
    int neighbors = ops.count_within_radius(probes, start, end, p, sq_radius,
                                            /*skip_id=*/i, k,
                                            &distance_evals);
    if (neighbors < k) {
      neighbors += ops.count_within_radius(probes, begin, start, p, sq_radius,
                                           /*skip_id=*/i, k - neighbors,
                                           &distance_evals);
    }
    if (neighbors < k) outliers.push_back(i);
  }
  RecordNestedLoop(counters, distance_evals);
  return outliers;
}

}  // namespace dod
