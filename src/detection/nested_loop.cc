// Copyright 2026 The DOD Authors.

#include "detection/nested_loop.h"

#include "common/distance.h"
#include "common/random.h"

namespace dod {

std::vector<uint32_t> NestedLoopDetector::DetectOutliers(
    const Dataset& points, size_t num_core, const DetectionParams& params,
    Counters* counters) const {
  DOD_CHECK(num_core <= points.size());
  const int dims = points.dims();
  const size_t n = points.size();
  std::vector<uint32_t> outliers;
  if (n == 0) return outliers;

  // "Evaluate ... in random order" is realized the way a scan over
  // randomly-stored data does it: the points are materialized once in a
  // random permutation and each probe sequence is a linear scan of that
  // buffer from a per-point random offset. One O(n) copy up front buys
  // sequential (cache-friendly) probing, and the shared permutation matches
  // the Lemma 4.1 cost model's independence assumption.
  Rng rng(params.seed);
  const std::vector<uint32_t> order = RandomPermutation(n, rng);
  std::vector<double> probe_coords(n * static_cast<size_t>(dims));
  for (size_t j = 0; j < n; ++j) {
    const double* src = points[order[j]];
    double* dst = probe_coords.data() + j * static_cast<size_t>(dims);
    for (int d = 0; d < dims; ++d) dst[d] = src[d];
  }

  const double radius = params.radius;
  const int k = params.min_neighbors;
  uint64_t distance_evals = 0;
  for (uint32_t i = 0; i < num_core; ++i) {
    const double* p = points[i];
    const size_t start = rng.NextBounded(n);
    int neighbors = 0;
    bool inlier = false;
    // Two sequential sweeps: [start, n) then [0, start).
    for (int sweep = 0; sweep < 2 && !inlier; ++sweep) {
      const size_t begin = sweep == 0 ? start : 0;
      const size_t end = sweep == 0 ? n : start;
      for (size_t j = begin; j < end; ++j) {
        if (order[j] == i) continue;
        ++distance_evals;
        if (WithinDistance(p, probe_coords.data() + j * dims, dims, radius)) {
          if (++neighbors >= k) {
            inlier = true;
            break;
          }
        }
      }
    }
    if (!inlier) outliers.push_back(i);
  }
  if (counters != nullptr) {
    counters->Increment("nested_loop.distance_evals", distance_evals);
  }
  return outliers;
}

}  // namespace dod
