// Copyright 2026 The DOD Authors.
//
// Count-only evaluation beside the detectors' verdicts.
//
// The detectors answer "is |N_r(p)| < k" and may stop counting the moment
// the answer is settled. The streaming summary layer (streaming/) needs the
// count itself so it can carry it across rounds and adjust it incrementally;
// this header exposes that evaluation over the same PartitionView / shared
// probe arena plumbing the detectors use.
//
// A count is either exact or *saturated*: counting stops once the running
// count reaches `cap` (the detector early-exit win, generalized to an
// arbitrary threshold), and the summary records count == cap with the
// saturated mark — a certified lower bound on the true neighbor count.
// Saturation is capped deterministically: even though batched kernels may
// overshoot the cap by a block, the stored summary is clamped to exactly
// cap, so summaries are bit-identical across kernel implementations.

#ifndef DOD_DETECTION_NEIGHBOR_COUNT_H_
#define DOD_DETECTION_NEIGHBOR_COUNT_H_

#include <cstddef>
#include <cstdint>

#include "detection/detector.h"
#include "detection/partition_view.h"
#include "kernels/kernel_mode.h"
#include "kernels/soa_block.h"

namespace dod {

// Exact-or-saturated |N_r(p)| (self excluded). Invariant: when !saturated,
// count is the exact neighbor count; when saturated, count is a lower
// bound and the true count is >= count.
struct NeighborCountSummary {
  uint32_t count = 0;
  bool saturated = false;
};

// Neighbor count of the view's local point `local` against every point of
// the view (self excluded), under params.radius / params.kernels. With
// cap >= 0, counting stops at cap and the result saturates at exactly
// count == cap; cap < 0 counts exactly. `pairs`, when non-null, accrues
// evaluated pairs.
NeighborCountSummary CountNeighbors(const PartitionView& view, size_t local,
                                    const DetectionParams& params, int cap,
                                    uint64_t* pairs);

// Block×segment exact pairwise count: adds to counts[i] the number of slots
// in [begin, end) of `points` within sq_radius of query i (row-major,
// points.dims() doubles per row). No cap, no self-skip — callers must not
// let a query occupy a scanned slot. Thin dispatch over the kernel table's
// count_block_within_radius entry.
void CountBlockAgainstSegment(const SoABlock& points, size_t begin, size_t end,
                              const double* queries, size_t num_queries,
                              double sq_radius, KernelMode kernels,
                              uint32_t* counts, uint64_t* pairs);

}  // namespace dod

#endif  // DOD_DETECTION_NEIGHBOR_COUNT_H_
