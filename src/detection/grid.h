// Copyright 2026 The DOD Authors.
//
// Sparse uniform grid over d-dimensional space. Cells are addressed by
// integer coordinates relative to an anchor; only non-empty cells are
// materialized. Used by the Cell-Based detector (Knorr & Ng) and by the DMT
// mini-bucket statistics.

#ifndef DOD_DETECTION_GRID_H_
#define DOD_DETECTION_GRID_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/point.h"
#include "common/status.h"
#include "detection/cell_key.h"

namespace dod {

class SparseGrid {
 public:
  struct Cell {
    CellCoord coord;
    std::vector<uint32_t> points;
  };

  // Grid of side `side` anchored at `origin` (coordinates of cell (0,..,0)'s
  // lower corner).
  SparseGrid(Point origin, double side);

  int dims() const { return origin_.dims(); }
  double side() const { return side_; }

  CellCoord CoordOf(const double* p) const;

  // Inserts point `id` with coordinates `p`.
  void Insert(const double* p, uint32_t id);

  // All non-empty cells, in insertion order of their first point.
  const std::vector<Cell>& cells() const { return cells_; }

  // Pointer to the cell at `coord`, or nullptr when empty. Stable until the
  // next Insert.
  const Cell* Find(const CellCoord& coord) const;

  // Number of points within Chebyshev cell-distance `ring_radius` of `coord`
  // (the (2·ring_radius+1)^d block centered on `coord`). Counts only
  // materialized cells, including `coord` itself.
  size_t CountBlock(const CellCoord& coord, int ring_radius) const;

  // Invokes `fn(cell)` for every non-empty cell in the block of Chebyshev
  // radius `ring_radius` around `coord` whose Chebyshev distance is in
  // [min_ring, ring_radius]. Pass min_ring=0 to include the center cell.
  template <typename Fn>
  void ForEachCellInBlock(const CellCoord& coord, int min_ring,
                          int ring_radius, Fn&& fn) const {
    CellCoord probe;
    probe.dims = coord.dims;
    VisitBlock(coord, min_ring, ring_radius, 0, 0, probe, fn);
  }

 private:
  template <typename Fn>
  void VisitBlock(const CellCoord& center, int min_ring, int max_ring,
                  int dim, int cheby_so_far, CellCoord& probe,
                  Fn&& fn) const {
    if (dim == center.dims) {
      if (cheby_so_far < min_ring) return;
      const Cell* cell = Find(probe);
      if (cell != nullptr) fn(*cell);
      return;
    }
    for (int off = -max_ring; off <= max_ring; ++off) {
      probe.c[dim] = center.c[dim] + off;
      const int cheby = std::max(cheby_so_far, off < 0 ? -off : off);
      VisitBlock(center, min_ring, max_ring, dim + 1, cheby, probe, fn);
    }
  }

  Point origin_;
  double side_;
  std::vector<Cell> cells_;
  std::unordered_map<CellCoord, uint32_t, CellCoordHash> index_;
};

}  // namespace dod

#endif  // DOD_DETECTION_GRID_H_
