// Copyright 2026 The DOD Authors.
//
// Theoretical cost models for the centralized detectors (Sec. IV) and the
// density-driven algorithm selector (Corollary 4.3).
//
// Costs are in abstract work units (expected distance evaluations, plus one
// unit per point for indexing in Cell-Based). Only *relative* magnitudes
// matter: they feed the cost-driven partitioner/allocator, whose goal is a
// balanced makespan, and the selector, which compares the two models on the
// same partition.

#ifndef DOD_DETECTION_COST_MODEL_H_
#define DOD_DETECTION_COST_MODEL_H_

#include <cstddef>

#include "detection/detector.h"

namespace dod {

// Volume of the d-dimensional L2 ball of radius r (A(p_i) in Lemma 4.1;
// π·r² in 2-d).
double BallVolume(double radius, int dims);

// Summary of a data partition as seen by the planner: how many points it
// holds and how much domain volume they cover. density() is the paper's
// density measure (Sec. IV-A): cardinality / domain area.
struct PartitionStats {
  size_t cardinality = 0;
  double area = 0.0;
  int dims = 2;

  double density() const {
    return area > 0.0 ? static_cast<double>(cardinality) / area : 0.0;
  }
};

// Lemma 4.1 — expected Nested-Loop cost on a uniformly distributed
// partition: |D| · A(D) · k / A(p), with two physical guards the closed form
// elides: a point probes at most |D|-1 others, and at least k probes are
// needed even when every probe hits.
double NestedLoopCost(const PartitionStats& stats,
                      const DetectionParams& params);

// Lemma 4.2 — Cell-Based cost:
//   (1) dense case  ((9/8)·r²·ρ ≥ k in 2-d):  |D|      (scan + index only)
//   (2) sparse case ((49/8)·r²·ρ < k in 2-d): |D|
//   (3) otherwise:                            |D| + NestedLoopCost.
// The 2-d constants generalize to the volumes of the 3^d and (2L+1)^d cell
// blocks with side r/(2√d), L = floor(2√d)+1.
double CellBasedCost(const PartitionStats& stats,
                     const DetectionParams& params);

// True when the Lemma 4.2 dense-case (1) pruning regime applies.
bool CellBasedDenseRegime(const PartitionStats& stats,
                          const DetectionParams& params);
// True when the Lemma 4.2 sparse-case (2) pruning regime applies.
bool CellBasedSparseRegime(const PartitionStats& stats,
                           const DetectionParams& params);

// True when the dense regime holds with a 2x safety margin
// ((9/8)·r²·ρ ≥ 2k in 2-d). At the exact Lemma 4.2 boundary the pink
// pruning fires for barely half the cells (the block count straddles k);
// planning credits Cell-Based's dense case only when pruning is
// near-certain.
bool CellBasedStrongDenseRegime(const PartitionStats& stats,
                                const DetectionParams& params);

// True when the sparse regime holds with a 4x safety margin
// ((49/8)·r²·ρ < k/4 in 2-d). Lemma 4.2's sparse case assumes a uniform
// partition: the quiet-neighborhood pruning needs the whole 7×7 block under
// k for *every* point, so Poisson fluctuation and sub-partition clumping
// void it anywhere near the threshold. Planning decisions (Corollary 4.3
// selection, allocation costing) only credit the sparse case inside this
// margin; the exact Lemma 4.2 boundary is kept in CellBasedCost for
// reference.
bool CellBasedUltraSparseRegime(const PartitionStats& stats,
                                const DetectionParams& params);

// Cell-Based cost as the planner sees it: linear only in the dense regime
// and the safety-margin sparse regime, `n + NestedLoopCost` otherwise.
double PlanningCellBasedCost(const PartitionStats& stats,
                             const DetectionParams& params);

// Planner-facing cost of running `kind` (Nested-Loop and BruteForce match
// EstimateCost; Cell-Based uses PlanningCellBasedCost).
double PlanningCost(AlgorithmKind kind, const PartitionStats& stats,
                    const DetectionParams& params);

// Cost of running `kind` on the partition.
double EstimateCost(AlgorithmKind kind, const PartitionStats& stats,
                    const DetectionParams& params);

// Corollary 4.3 — the cheapest algorithm for the partition: Cell-Based in
// the dense/sparse pruning regimes, Nested-Loop in between.
AlgorithmKind SelectAlgorithm(const PartitionStats& stats,
                              const DetectionParams& params);

// ---------------------------------------------------------------------------
// Mini-bucket-refined cost models.
//
// Lemmas 4.1/4.2 assume a uniformly distributed partition. Real partitions
// produced by bisection mix densities, so the planner evaluates the lemmas
// at *mini-bucket* granularity: each bucket contributes an additive term
// derived from its own density, and the region cost combines the summed
// terms with the region's total cardinality. On a density-uniform region
// this reduces exactly to the plain lemmas — which is why DMT's DSHC
// clusters (density-homogeneous by construction) can use the plain models.
//
//  * Nested-Loop: a point in bucket b needs min(k·n/(V·ρ_b), n) probes
//    (n = region cardinality, V = BallVolume). Summing over buckets:
//    cost = n · Σ_b n_b · min(k/(V·ρ_b), 1)  — the Σ term is the "aux".
//  * Cell-Based: buckets in the dense/sparse pruning regimes cost only
//    their indexing; points of middle-regime buckets are evaluated
//    individually against the whole region: cost = n + n · Σ_b(middle) n_b.
// ---------------------------------------------------------------------------

// Additive per-bucket term for `kind` (see above). `density` is the
// bucket's own density; `cardinality` the bucket's point count.
double RefinedBucketAux(AlgorithmKind kind, double cardinality,
                        double density, const DetectionParams& params,
                        int dims);

// Region cost from the region's total cardinality and summed bucket aux.
double RefinedRegionCost(AlgorithmKind kind, double cardinality,
                         double aux_sum, const DetectionParams& params);

}  // namespace dod

#endif  // DOD_DETECTION_COST_MODEL_H_
