// Copyright 2026 The DOD Authors.

#include "detection/cell_based.h"

#include <algorithm>
#include <cmath>

#include "detection/grid.h"
#include "kernels/distance_kernels.h"
#include "kernels/soa_block.h"
#include "observability/metrics.h"

namespace dod {
namespace {

struct PruneStats {
  uint64_t grid_cells = 0;
  uint64_t red_cells = 0;
  uint64_t pink_cells = 0;
  uint64_t outlier_cells = 0;
  uint64_t probed_cells = 0;
};

// The three cell prunings, shared by both entry points. Decided outliers
// land in `outliers`; core points neither pruning could decide land in
// `undecided`, grouped by their candidate cell (the cell loop appends per
// cell). They are then evaluated individually "in a fashion similar to
// Nested-Loop" (Sec. IV-B), which is what the Lemma 4.2 case-3 cost term
// |D|·A(D)·k/(π·r²) models.
void PruneCells(const SparseGrid& grid, size_t num_core, int k, int max_ring,
                std::vector<uint32_t>* undecided,
                std::vector<uint32_t>* outliers, PruneStats* stats) {
  stats->grid_cells = grid.cells().size();
  std::vector<uint32_t> core_members;
  for (const SparseGrid::Cell& cell : grid.cells()) {
    core_members.clear();
    for (uint32_t id : cell.points) {
      if (id < num_core) core_members.push_back(id);
    }
    // Cells holding only support points never need a verdict.
    if (core_members.empty()) continue;

    // Red pruning: > k points in the cell itself; all pairs within r/2.
    if (cell.points.size() > static_cast<size_t>(k)) {
      ++stats->red_cells;
      continue;
    }

    // Pink pruning: > k points in C plus its adjacent layer L1, all within r
    // of any point in C.
    const size_t count_l01 = grid.CountBlock(cell.coord, 1);
    if (count_l01 > static_cast<size_t>(k)) {
      ++stats->pink_cells;
      continue;
    }

    // Quiet-neighborhood pruning: every possible neighbor lives within
    // `max_ring` cells; if that block holds ≤ k points, each core point has
    // at most k-1 neighbors and is an outlier.
    const size_t count_all = grid.CountBlock(cell.coord, max_ring);
    if (count_all <= static_cast<size_t>(k)) {
      ++stats->outlier_cells;
      outliers->insert(outliers->end(), core_members.begin(),
                       core_members.end());
      continue;
    }

    ++stats->probed_cells;
    undecided->insert(undecided->end(), core_members.begin(),
                      core_members.end());
  }
}

void RecordCellBased(Counters* counters, const PruneStats& stats,
                     uint64_t distance_evals) {
  if (counters != nullptr) {
    counters->Increment("cell_based.cells", stats.grid_cells);
    counters->Increment("cell_based.red_cells", stats.red_cells);
    counters->Increment("cell_based.pink_cells", stats.pink_cells);
    counters->Increment("cell_based.outlier_cells", stats.outlier_cells);
    counters->Increment("cell_based.probed_cells", stats.probed_cells);
    counters->Increment("cell_based.distance_evals", distance_evals);
  }
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static const uint32_t kCalls =
      metrics.Id("detect.calls.cell_based", MetricKind::kCounter);
  static const uint32_t kPairs =
      metrics.Id("detect.pairs.cell_based", MetricKind::kCounter);
  metrics.Increment(kCalls);
  metrics.Increment(kPairs, distance_evals);
}

}  // namespace

double CellBasedCellSide(double radius, int dims) {
  return radius / (2.0 * std::sqrt(static_cast<double>(dims)));
}

int CellBasedNeighborRings(int dims) {
  return static_cast<int>(std::floor(2.0 * std::sqrt(dims))) + 1;
}

std::vector<uint32_t> CellBasedDetector::DetectOutliers(
    const Dataset& points, size_t num_core, const DetectionParams& params,
    Counters* counters) const {
  DOD_CHECK(num_core <= points.size());
  std::vector<uint32_t> outliers;
  if (num_core == 0) return outliers;

  const int dims = points.dims();
  const int k = params.min_neighbors;
  const double side = CellBasedCellSide(params.radius, dims);
  const int max_ring = CellBasedNeighborRings(dims);

  // Index every point (core and support) into the sparse grid.
  SparseGrid grid(points.Bounds().min(), side);
  for (uint32_t i = 0; i < points.size(); ++i) grid.Insert(points[i], i);

  PruneStats stats;
  uint64_t distance_evals = 0;
  std::vector<uint32_t> undecided;
  PruneCells(grid, num_core, k, max_ring, &undecided, &outliers, &stats);

  // Individual evaluation of the undecided points: an exact neighbor count
  // against the whole partition. Unlike Nested-Loop there is no random
  // early exit — the index answered the easy cases already, and this pass
  // computes |N_r(p)| outright. This is what makes Cell-Based lose to
  // Nested-Loop in the intermediate-density window of Fig. 5, where neither
  // pruning fires for most cells yet neighbors are plentiful enough for
  // Nested-Loop to exit quickly.
  // All undecided points probe the same blocked SoA copy of the partition,
  // built once; the square of r is hoisted with it. No cap: the count is
  // exact in every kernel mode.
  if (!undecided.empty()) {
    const size_t n = points.size();
    SoABlock probes(dims);
    probes.Assign(points);
    const double sq_radius = params.radius * params.radius;
    const KernelOps& ops = GetKernelOps(params.kernels);
    for (uint32_t id : undecided) {
      const int neighbors =
          ops.count_within_radius(probes, 0, n, points[id], sq_radius,
                                  /*skip_id=*/id, /*cap=*/-1,
                                  &distance_evals);
      if (neighbors < k) outliers.push_back(id);
    }
  }

  std::sort(outliers.begin(), outliers.end());
  RecordCellBased(counters, stats, distance_evals);
  return outliers;
}

std::vector<uint32_t> CellBasedDetector::DetectOutliers(
    const PartitionView& partition, const DetectionParams& params,
    Counters* counters) const {
  if (!partition.has_probes()) {
    return Detector::DetectOutliers(partition, params, counters);
  }
  const size_t num_core = partition.num_core();
  std::vector<uint32_t> outliers;
  if (num_core == 0) return outliers;

  const int dims = partition.dims();
  const int k = params.min_neighbors;
  const double side = CellBasedCellSide(params.radius, dims);
  const int max_ring = CellBasedNeighborRings(dims);

  // Grid build reads the view in place — one indexed load per point, no
  // partition copy.
  SparseGrid grid(partition.Bounds().min(), side);
  for (uint32_t i = 0; i < partition.size(); ++i) {
    grid.Insert(partition.point(i), i);
  }

  PruneStats stats;
  uint64_t distance_evals = 0;
  std::vector<uint32_t> undecided;
  PruneCells(grid, num_core, k, max_ring, &undecided, &outliers, &stats);

  // Undecided points take their exact counts against the view's shared
  // probe segment instead of a freshly built SoA copy. The segment is a
  // permutation of the same points, and the count is exact (no cap), so
  // the verdicts match the classic path bit for bit.
  if (!undecided.empty()) {
    const SoABlock& probes = partition.probes();
    const size_t begin = partition.probe_begin();
    const size_t end = partition.probe_end();
    const double sq_radius = params.radius * params.radius;
    const KernelOps& ops = GetKernelOps(params.kernels);
    for (uint32_t id : undecided) {
      const int neighbors =
          ops.count_within_radius(probes, begin, end, partition.point(id),
                                  sq_radius, /*skip_id=*/id, /*cap=*/-1,
                                  &distance_evals);
      if (neighbors < k) outliers.push_back(id);
    }
  }

  std::sort(outliers.begin(), outliers.end());
  RecordCellBased(counters, stats, distance_evals);
  return outliers;
}

}  // namespace dod
