// Copyright 2026 The DOD Authors.
//
// The Nested-Loop detector (Knorr & Ng, VLDB'98; Sec. IV-A of the paper):
// for each point p, evaluate distances to the other points *in random order*
// until either k neighbors are found (p is an inlier) or every point has
// been examined (p is an outlier). Its expected cost on uniform data is
// |D| · A(D) · k / A(p) (Lemma 4.1): cheap on dense partitions where random
// probes hit neighbors quickly, expensive on sparse ones.

#ifndef DOD_DETECTION_NESTED_LOOP_H_
#define DOD_DETECTION_NESTED_LOOP_H_

#include "detection/detector.h"

namespace dod {

class NestedLoopDetector : public Detector {
 public:
  using Detector::DetectOutliers;

  std::string_view name() const override { return "Nested-Loop"; }
  AlgorithmKind kind() const override { return AlgorithmKind::kNestedLoop; }

  std::vector<uint32_t> DetectOutliers(const Dataset& points, size_t num_core,
                                       const DetectionParams& params,
                                       Counters* counters) const override;

  // Zero-copy entry: sweeps the view's pre-permuted shared probe segment
  // from a per-point random start instead of building a private buffer.
  std::vector<uint32_t> DetectOutliers(const PartitionView& partition,
                                       const DetectionParams& params,
                                       Counters* counters) const override;
};

}  // namespace dod

#endif  // DOD_DETECTION_NESTED_LOOP_H_
