// Copyright 2026 The DOD Authors.
//
// Shared grid-cell keying: the integer cell address type and the uniform
// floor((p - origin) / side) assignment used everywhere a point is hashed
// into a grid cell.
//
// Both the batch Cell-Based detector's SparseGrid (detection/grid.h) and
// the streaming detector's dirty-cell tracker (streaming/) key cells this
// way, and the two must never drift: the streaming service re-detects
// exactly the cells a batch run would have assigned the same coordinates
// to, and a divergent rounding or hashing choice would silently re-detect
// the wrong neighborhoods. Keeping the formula and the hash in one header
// (with a pinning test in tests/streaming_test.cc) makes the sharing
// structural instead of coincidental.

#ifndef DOD_DETECTION_CELL_KEY_H_
#define DOD_DETECTION_CELL_KEY_H_

#include <cmath>
#include <cstdint>

#include "common/point.h"

namespace dod {

// Integer cell address. Only the first `dims` entries are meaningful.
struct CellCoord {
  int32_t c[kMaxDimensions] = {0};
  int dims = 0;

  bool operator==(const CellCoord& other) const {
    if (dims != other.dims) return false;
    for (int i = 0; i < dims; ++i) {
      if (c[i] != other.c[i]) return false;
    }
    return true;
  }
};

struct CellCoordHash {
  size_t operator()(const CellCoord& coord) const {
    // FNV-1a over the used coordinates.
    uint64_t h = 1469598103934665603ULL;
    for (int i = 0; i < coord.dims; ++i) {
      h ^= static_cast<uint32_t>(coord.c[i]);
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

// Lexicographic order over coordinates; the deterministic iteration order
// for state kept in (unordered) cell maps.
struct CellCoordLess {
  bool operator()(const CellCoord& a, const CellCoord& b) const {
    for (int i = 0; i < a.dims; ++i) {
      if (a.c[i] != b.c[i]) return a.c[i] < b.c[i];
    }
    return false;
  }
};

// The uniform grid assignment: cell i of dimension d covers
// [origin[d] + i*side, origin[d] + (i+1)*side). `side` must be > 0.
inline CellCoord UniformCellKey(const double* p, int dims,
                                const double* origin, double side) {
  CellCoord coord;
  coord.dims = dims;
  for (int i = 0; i < dims; ++i) {
    coord.c[i] = static_cast<int32_t>(std::floor((p[i] - origin[i]) / side));
  }
  return coord;
}

}  // namespace dod

#endif  // DOD_DETECTION_CELL_KEY_H_
