// Copyright 2026 The DOD Authors.

#include "detection/cost_model.h"

#include <algorithm>
#include <cmath>

#include "detection/cell_based.h"

namespace dod {

double BallVolume(double radius, int dims) {
  const double d = static_cast<double>(dims);
  return std::pow(M_PI, d / 2.0) / std::tgamma(d / 2.0 + 1.0) *
         std::pow(radius, d);
}

double NestedLoopCost(const PartitionStats& stats,
                      const DetectionParams& params) {
  const double n = static_cast<double>(stats.cardinality);
  if (n <= 1.0) return n;
  const double k = static_cast<double>(params.min_neighbors);

  // Probability that a random probe is a neighbor: μ = A(p) / A(D),
  // clamped to [.., 1] for partitions smaller than the neighborhood ball.
  double mu = 1.0;
  if (stats.area > 0.0) {
    mu = std::min(1.0, BallVolume(params.radius, stats.dims) / stats.area);
  }
  // Expected probes to find k neighbors; a point cannot probe more than the
  // n-1 others (the outlier / not-enough-neighbors regime).
  const double per_point = std::min(k / mu, n - 1.0);
  return n * per_point;
}

bool CellBasedDenseRegime(const PartitionStats& stats,
                          const DetectionParams& params) {
  const double side = CellBasedCellSide(params.radius, stats.dims);
  const double block1 = std::pow(3.0 * side, stats.dims);
  return block1 * stats.density() >=
         static_cast<double>(params.min_neighbors);
}

bool CellBasedSparseRegime(const PartitionStats& stats,
                           const DetectionParams& params) {
  const double side = CellBasedCellSide(params.radius, stats.dims);
  const int rings = CellBasedNeighborRings(stats.dims);
  const double block = std::pow((2.0 * rings + 1.0) * side, stats.dims);
  return block * stats.density() < static_cast<double>(params.min_neighbors);
}

double CellBasedCost(const PartitionStats& stats,
                     const DetectionParams& params) {
  const double n = static_cast<double>(stats.cardinality);
  if (CellBasedDenseRegime(stats, params) ||
      CellBasedSparseRegime(stats, params)) {
    return n;
  }
  return n + NestedLoopCost(stats, params);
}

double EstimateCost(AlgorithmKind kind, const PartitionStats& stats,
                    const DetectionParams& params) {
  switch (kind) {
    case AlgorithmKind::kNestedLoop:
      return NestedLoopCost(stats, params);
    case AlgorithmKind::kCellBased:
      return CellBasedCost(stats, params);
    case AlgorithmKind::kBruteForce: {
      const double n = static_cast<double>(stats.cardinality);
      return n * std::max(0.0, n - 1.0);
    }
  }
  return 0.0;
}

bool CellBasedStrongDenseRegime(const PartitionStats& stats,
                                const DetectionParams& params) {
  constexpr double kDenseSafetyFactor = 2.0;
  const double side = CellBasedCellSide(params.radius, stats.dims);
  const double block1 = std::pow(3.0 * side, stats.dims);
  return block1 * stats.density() >=
         kDenseSafetyFactor * static_cast<double>(params.min_neighbors);
}

bool CellBasedUltraSparseRegime(const PartitionStats& stats,
                                const DetectionParams& params) {
  constexpr double kSparseSafetyFactor = 4.0;
  const double side = CellBasedCellSide(params.radius, stats.dims);
  const int rings = CellBasedNeighborRings(stats.dims);
  const double block = std::pow((2.0 * rings + 1.0) * side, stats.dims);
  return block * stats.density() <
         static_cast<double>(params.min_neighbors) / kSparseSafetyFactor;
}

// Planner cost unit = one distance evaluation. Cell-Based's linear term is
// per-point *indexing* work (grid hash insert plus the L1/L2 block counts),
// which costs roughly this many distance evaluations per point. Measured
// with bench/micro_primitives; only the ratio matters, for mixing NL- and
// CB-assigned partitions in one allocation plan.
constexpr double kCellIndexUnitCost = 25.0;

double PlanningCellBasedCost(const PartitionStats& stats,
                             const DetectionParams& params) {
  const double n = static_cast<double>(stats.cardinality);
  if (CellBasedStrongDenseRegime(stats, params)) {
    return kCellIndexUnitCost * n;
  }
  // The sparse case gets no linear credit at all: the quiet-neighborhood
  // pruning needs point-level uniformity that no sample-resolution check
  // can certify (sub-bucket clumps void it), and a mispredicted "cheap"
  // sparse partition costs a quadratic individual-evaluation pass. Planning
  // conservatively prices every non-strongly-dense partition as
  // index + Nested-Loop; the exact Lemma 4.2 stays in CellBasedCost, and
  // the sparse credit does hold on genuinely uniform data (Fig. 5).
  return kCellIndexUnitCost * n + NestedLoopCost(stats, params);
}

double PlanningCost(AlgorithmKind kind, const PartitionStats& stats,
                    const DetectionParams& params) {
  if (kind == AlgorithmKind::kCellBased) {
    return PlanningCellBasedCost(stats, params);
  }
  return EstimateCost(kind, stats, params);
}

AlgorithmKind SelectAlgorithm(const PartitionStats& stats,
                              const DetectionParams& params) {
  const double nl = NestedLoopCost(stats, params);
  const double cb = PlanningCellBasedCost(stats, params);
  return cb < nl ? AlgorithmKind::kCellBased : AlgorithmKind::kNestedLoop;
}

double RefinedBucketAux(AlgorithmKind kind, double cardinality,
                        double density, const DetectionParams& params,
                        int dims) {
  switch (kind) {
    case AlgorithmKind::kNestedLoop: {
      const double ball = BallVolume(params.radius, dims);
      double hit_fraction = 1.0;
      if (density > 0.0) {
        hit_fraction =
            std::min(1.0, params.min_neighbors / (ball * density));
      }
      return cardinality * hit_fraction;
    }
    case AlgorithmKind::kCellBased: {
      // Only the dense-regime (red/pink) pruning is credited at planning
      // time: it is robust to sub-bucket clumping (clumps only raise local
      // density). The sparse-regime quiet-neighborhood pruning requires the
      // whole 7×7 block around every point to stay under k — any clustering
      // below mini-bucket resolution voids it — so sparse buckets are
      // conservatively planned as individually-evaluated. Even dense
      // buckets keep a small fringe fraction: on non-uniform data a
      // density-gradient boundary always leaves some points unpruned, and
      // each of those costs a full-partition scan.
      constexpr double kFringeFraction = 0.05;
      PartitionStats bucket;
      bucket.dims = dims;
      bucket.area = density > 0.0 ? cardinality / density : 0.0;
      bucket.cardinality = static_cast<size_t>(cardinality + 0.5);
      return CellBasedDenseRegime(bucket, params)
                 ? kFringeFraction * cardinality
                 : cardinality;
    }
    case AlgorithmKind::kBruteForce:
      return cardinality;
  }
  return 0.0;
}

double RefinedRegionCost(AlgorithmKind kind, double cardinality,
                         double aux_sum, const DetectionParams& /*params*/) {
  switch (kind) {
    case AlgorithmKind::kNestedLoop:
      return cardinality * aux_sum;
    case AlgorithmKind::kCellBased:
      return kCellIndexUnitCost * cardinality + cardinality * aux_sum;
    case AlgorithmKind::kBruteForce:
      return cardinality * aux_sum;
  }
  return 0.0;
}

}  // namespace dod
