// Copyright 2026 The DOD Authors.

#include "detection/brute_force.h"

#include "common/distance.h"
#include "observability/metrics.h"

namespace dod {

std::vector<uint32_t> BruteForceDetector::DetectOutliers(
    const Dataset& points, size_t num_core, const DetectionParams& params,
    Counters* counters) const {
  DOD_CHECK(num_core <= points.size());
  std::vector<uint32_t> outliers;
  const int dims = points.dims();
  const size_t n = points.size();
  const double sq_radius = params.radius * params.radius;
  uint64_t distance_evals = 0;
  for (uint32_t i = 0; i < num_core; ++i) {
    const double* p = points[i];
    int neighbors = 0;
    for (uint32_t j = 0; j < n; ++j) {
      if (j == i) continue;
      ++distance_evals;
      if (WithinSquaredDistance(p, points[j], dims, sq_radius)) {
        if (++neighbors >= params.min_neighbors) break;
      }
    }
    if (neighbors < params.min_neighbors) outliers.push_back(i);
  }
  if (counters != nullptr) {
    counters->Increment("brute_force.distance_evals", distance_evals);
  }
  {
    MetricsRegistry& metrics = MetricsRegistry::Global();
    static const uint32_t kCalls =
        metrics.Id("detect.calls.brute_force", MetricKind::kCounter);
    static const uint32_t kPairs =
        metrics.Id("detect.pairs.brute_force", MetricKind::kCounter);
    metrics.Increment(kCalls);
    metrics.Increment(kPairs, distance_evals);
  }
  return outliers;
}

}  // namespace dod
