// Copyright 2026 The DOD Authors.

#include "detection/brute_force.h"

#include "common/distance.h"
#include "kernels/distance_kernels.h"
#include "observability/metrics.h"

namespace dod {
namespace {

void RecordBruteForce(Counters* counters, uint64_t distance_evals) {
  if (counters != nullptr) {
    counters->Increment("brute_force.distance_evals", distance_evals);
  }
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static const uint32_t kCalls =
      metrics.Id("detect.calls.brute_force", MetricKind::kCounter);
  static const uint32_t kPairs =
      metrics.Id("detect.pairs.brute_force", MetricKind::kCounter);
  metrics.Increment(kCalls);
  metrics.Increment(kPairs, distance_evals);
}

}  // namespace

std::vector<uint32_t> BruteForceDetector::DetectOutliers(
    const Dataset& points, size_t num_core, const DetectionParams& params,
    Counters* counters) const {
  DOD_CHECK(num_core <= points.size());
  std::vector<uint32_t> outliers;
  const int dims = points.dims();
  const size_t n = points.size();
  const double sq_radius = params.radius * params.radius;
  uint64_t distance_evals = 0;
  for (uint32_t i = 0; i < num_core; ++i) {
    const double* p = points[i];
    int neighbors = 0;
    for (uint32_t j = 0; j < n; ++j) {
      if (j == i) continue;
      ++distance_evals;
      if (WithinSquaredDistance(p, points[j], dims, sq_radius)) {
        if (++neighbors >= params.min_neighbors) break;
      }
    }
    if (neighbors < params.min_neighbors) outliers.push_back(i);
  }
  RecordBruteForce(counters, distance_evals);
  return outliers;
}

std::vector<uint32_t> BruteForceDetector::DetectOutliers(
    const PartitionView& partition, const DetectionParams& params,
    Counters* counters) const {
  if (!partition.has_probes()) {
    // Identity views run the deterministic per-pair scan unchanged; other
    // probe-less views materialize and do the same.
    return Detector::DetectOutliers(partition, params, counters);
  }
  const size_t num_core = partition.num_core();
  std::vector<uint32_t> outliers;
  if (partition.empty()) return outliers;

  // Count against the shared probe segment with the kernels, early-exiting
  // at k. The segment order differs from the per-pair scan, which only
  // changes where the early exit lands — the verdict (≥ k neighbors or an
  // exact count below k) is order-independent.
  const SoABlock& probes = partition.probes();
  const size_t begin = partition.probe_begin();
  const size_t end = partition.probe_end();
  const double sq_radius = params.radius * params.radius;
  const int k = params.min_neighbors;
  const KernelOps& ops = GetKernelOps(params.kernels);
  uint64_t distance_evals = 0;
  for (uint32_t i = 0; i < num_core; ++i) {
    const int neighbors =
        ops.count_within_radius(probes, begin, end, partition.point(i),
                                sq_radius, /*skip_id=*/i, k, &distance_evals);
    if (neighbors < k) outliers.push_back(i);
  }
  RecordBruteForce(counters, distance_evals);
  return outliers;
}

}  // namespace dod
