// Copyright 2026 The DOD Authors.
//
// Exact reference detector: counts neighbors by a full deterministic scan
// (with early exit at k). Serves as the oracle in tests and as a baseline.

#ifndef DOD_DETECTION_BRUTE_FORCE_H_
#define DOD_DETECTION_BRUTE_FORCE_H_

#include "detection/detector.h"

namespace dod {

class BruteForceDetector : public Detector {
 public:
  using Detector::DetectOutliers;

  std::string_view name() const override { return "BruteForce"; }
  AlgorithmKind kind() const override { return AlgorithmKind::kBruteForce; }

  std::vector<uint32_t> DetectOutliers(const Dataset& points, size_t num_core,
                                       const DetectionParams& params,
                                       Counters* counters) const override;

  // Zero-copy entry: counts against the view's shared probe segment when it
  // has one (identity views keep the deterministic per-pair scan).
  std::vector<uint32_t> DetectOutliers(const PartitionView& partition,
                                       const DetectionParams& params,
                                       Counters* counters) const override;
};

}  // namespace dod

#endif  // DOD_DETECTION_BRUTE_FORCE_H_
