// Copyright 2026 The DOD Authors.

#include "detection/neighbor_count.h"

#include "common/distance.h"
#include "kernels/distance_kernels.h"

namespace dod {

NeighborCountSummary CountNeighbors(const PartitionView& view, size_t local,
                                    const DetectionParams& params, int cap,
                                    uint64_t* pairs) {
  const double sq_radius = params.radius * params.radius;
  const double* q = view.point(local);
  int64_t raw = 0;
  if (view.has_probes()) {
    const KernelOps& ops = GetKernelOps(params.kernels);
    raw = ops.count_within_radius(view.probes(), view.probe_begin(),
                                  view.probe_end(), q, sq_radius,
                                  static_cast<uint32_t>(local), cap, pairs);
  } else {
    // Probe-less views (tests, tiny cells): the scalar reference walk.
    const int dims = view.dims();
    uint64_t evals = 0;
    for (size_t j = 0; j < view.size(); ++j) {
      if (j == local) continue;
      ++evals;
      if (WithinSquaredDistance(q, view.point(j), dims, sq_radius)) {
        if (++raw >= cap && cap >= 0) break;
      }
    }
    if (pairs != nullptr) *pairs += evals;
  }
  // Clamp at the cap: batched kernels may overshoot by a block, so the
  // stored summary must not depend on how far they ran.
  if (cap >= 0 && raw >= cap) {
    return NeighborCountSummary{static_cast<uint32_t>(cap), true};
  }
  return NeighborCountSummary{static_cast<uint32_t>(raw), false};
}

void CountBlockAgainstSegment(const SoABlock& points, size_t begin, size_t end,
                              const double* queries, size_t num_queries,
                              double sq_radius, KernelMode kernels,
                              uint32_t* counts, uint64_t* pairs) {
  if (num_queries == 0 || begin >= end) return;
  GetKernelOps(kernels).count_block_within_radius(
      points, begin, end, queries, num_queries, sq_radius, counts, pairs);
}

}  // namespace dod
