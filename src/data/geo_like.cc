// Copyright 2026 The DOD Authors.

#include "data/geo_like.h"

#include <cmath>
#include <vector>

#include "common/random.h"
#include "data/generators.h"

namespace dod {
namespace {

struct RegionConfig {
  double mean_density;
  SettlementProfile profile;
};

RegionConfig ConfigFor(GeoRegion region) {
  SettlementProfile profile;
  switch (region) {
    case GeoRegion::kOhio:
      // Sparse rural state: few mid-size cities, lots of scattered points.
      profile.num_cities = 5;
      profile.city_fraction = 0.55;
      profile.sigma_frac = 0.06;
      return RegionConfig{0.012, profile};
    case GeoRegion::kMassachusetts:
      // Intermediate: Boston-dominated but with real rural spread.
      profile.num_cities = 6;
      profile.city_fraction = 0.7;
      profile.sigma_frac = 0.05;
      return RegionConfig{0.06, profile};
    case GeoRegion::kCalifornia:
      // Dense: a handful of very large metro areas.
      profile.num_cities = 8;
      profile.city_fraction = 0.85;
      profile.sigma_frac = 0.04;
      return RegionConfig{0.35, profile};
    case GeoRegion::kNewYork:
      // Densest: one dominant metro plus satellites.
      profile.num_cities = 6;
      profile.city_fraction = 0.9;
      profile.sigma_frac = 0.035;
      profile.city_zipf = 1.4;
      return RegionConfig{0.6, profile};
  }
  return RegionConfig{0.06, profile};
}

}  // namespace

std::string_view GeoRegionName(GeoRegion region) {
  switch (region) {
    case GeoRegion::kOhio:
      return "OH";
    case GeoRegion::kMassachusetts:
      return "MA";
    case GeoRegion::kCalifornia:
      return "CA";
    case GeoRegion::kNewYork:
      return "NY";
  }
  return "??";
}

Dataset GenerateGeoRegion(GeoRegion region, size_t n, uint64_t seed) {
  const RegionConfig config = ConfigFor(region);
  const Rect domain = DomainForDensity(n, config.mean_density);
  return GenerateSettlements(n, domain, config.profile, seed);
}

std::string_view MapLevelName(MapLevel level) {
  switch (level) {
    case MapLevel::kMassachusetts:
      return "MA";
    case MapLevel::kNewEngland:
      return "NE";
    case MapLevel::kUnitedStates:
      return "US";
    case MapLevel::kPlanet:
      return "Planet";
  }
  return "??";
}

size_t MapLevelMultiplier(MapLevel level) {
  switch (level) {
    case MapLevel::kMassachusetts:
      return 1;
    case MapLevel::kNewEngland:
      return 3;
    case MapLevel::kUnitedStates:
      return 16;
    case MapLevel::kPlanet:
      return 64;
  }
  return 1;
}

Dataset GenerateHierarchical(MapLevel level, size_t base_n, uint64_t seed) {
  if (level == MapLevel::kMassachusetts) {
    return GenerateGeoRegion(GeoRegion::kMassachusetts, base_n, seed);
  }

  int sub_regions = 0;
  switch (level) {
    case MapLevel::kNewEngland:
      sub_regions = 4;
      break;
    case MapLevel::kUnitedStates:
      sub_regions = 12;
      break;
    case MapLevel::kPlanet:
      sub_regions = 32;
      break;
    case MapLevel::kMassachusetts:
      sub_regions = 1;
      break;
  }
  const size_t total_n = base_n * MapLevelMultiplier(level);

  Rng rng(seed);
  // Zipf point counts across sub-regions → strong size skew at scale.
  std::vector<double> weights(static_cast<size_t>(sub_regions));
  double total_weight = 0.0;
  for (int s = 0; s < sub_regions; ++s) {
    weights[static_cast<size_t>(s)] =
        1.0 / std::pow(static_cast<double>(s + 1), 0.8);
    total_weight += weights[static_cast<size_t>(s)];
  }

  // Sub-regions live on a sparse tile mosaic: tiles leave empty space
  // between regions (oceans / unpopulated land), which is where the skew
  // that defeats uniform partitioning comes from.
  const int tiles_per_side =
      static_cast<int>(std::ceil(std::sqrt(static_cast<double>(sub_regions))));
  std::vector<uint32_t> tile_order =
      RandomPermutation(static_cast<size_t>(tiles_per_side * tiles_per_side),
                        rng);

  // Size each sub-region's domain from a log-uniform density draw covering
  // the sparse-to-dense spectrum, then place it inside its tile.
  Dataset data(2);
  data.Reserve(total_n);
  size_t emitted = 0;
  double tile_extent = 0.0;
  // First pass: compute the largest sub-region extent to size the tiles.
  struct SubRegion {
    size_t n;
    double density;
    SettlementProfile profile;
    uint64_t seed;
  };
  std::vector<SubRegion> subs;
  double max_extent = 0.0;
  for (int s = 0; s < sub_regions; ++s) {
    SubRegion sub;
    const double frac = weights[static_cast<size_t>(s)] / total_weight;
    sub.n = s + 1 == sub_regions
                ? total_n - emitted
                : static_cast<size_t>(frac * total_n);
    emitted += sub.n;
    // Density log-uniform in [0.008, 0.8].
    sub.density = 0.008 * std::pow(100.0, rng.NextDouble());
    sub.profile.num_cities = 3 + static_cast<int>(rng.NextBounded(8));
    sub.profile.city_fraction = rng.NextUniform(0.55, 0.9);
    sub.profile.sigma_frac = rng.NextUniform(0.03, 0.07);
    sub.seed = rng.NextUint64();
    if (sub.n > 0) {
      max_extent = std::max(
          max_extent, std::sqrt(static_cast<double>(sub.n) / sub.density));
    }
    subs.push_back(sub);
  }
  // Tiles 1.5× the largest region leave gaps between neighbors.
  tile_extent = 1.5 * max_extent;

  for (int s = 0; s < sub_regions; ++s) {
    const SubRegion& sub = subs[static_cast<size_t>(s)];
    if (sub.n == 0) continue;
    const uint32_t tile = tile_order[static_cast<size_t>(s)];
    const int tx = static_cast<int>(tile) % tiles_per_side;
    const int ty = static_cast<int>(tile) / tiles_per_side;
    const double extent =
        std::sqrt(static_cast<double>(sub.n) / sub.density);
    const double ox = tx * tile_extent + rng.NextUniform(0.0, tile_extent - extent);
    const double oy = ty * tile_extent + rng.NextUniform(0.0, tile_extent - extent);
    const Rect domain(Point{ox, oy}, Point{ox + extent, oy + extent});
    Dataset region = GenerateSettlements(sub.n, domain, sub.profile, sub.seed);
    data.AppendAll(region);
  }
  return data;
}

}  // namespace dod
