// Copyright 2026 The DOD Authors.

#include "data/tiger_like.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "data/generators.h"

namespace dod {

Dataset GenerateRoadNetwork(size_t n, const Rect& domain,
                            const RoadNetworkProfile& profile, uint64_t seed) {
  DOD_CHECK(domain.dims() == 2);
  DOD_CHECK(profile.num_roads >= 1);
  Rng rng(seed);

  struct Road {
    double x0, y0, dx, dy;  // start + full-length direction vector
  };
  const double extent = std::max(domain.Extent(0), domain.Extent(1));
  std::vector<Road> roads;
  std::vector<double> cum_weight;
  double total_weight = 0.0;
  for (int r = 0; r < profile.num_roads; ++r) {
    Road road;
    road.x0 = rng.NextUniform(domain.lo(0), domain.hi(0));
    road.y0 = rng.NextUniform(domain.lo(1), domain.hi(1));
    const double angle = rng.NextUniform(0.0, 2.0 * M_PI);
    const double length =
        extent * rng.NextUniform(profile.min_length_frac,
                                 profile.max_length_frac);
    road.dx = std::cos(angle) * length;
    road.dy = std::sin(angle) * length;
    roads.push_back(road);
    total_weight += 1.0 / std::pow(static_cast<double>(r + 1),
                                   profile.road_zipf);
    cum_weight.push_back(total_weight);
  }

  const double jitter = profile.jitter_frac * extent;
  Dataset data(2);
  data.Reserve(n);
  Point p(2);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBernoulli(profile.road_fraction)) {
      const double u = rng.NextDouble() * total_weight;
      const size_t r = static_cast<size_t>(
          std::lower_bound(cum_weight.begin(), cum_weight.end(), u) -
          cum_weight.begin());
      const Road& road = roads[std::min(r, roads.size() - 1)];
      const double t = rng.NextDouble();
      p[0] = std::clamp(road.x0 + t * road.dx + jitter * rng.NextGaussian(),
                        domain.lo(0), domain.hi(0));
      p[1] = std::clamp(road.y0 + t * road.dy + jitter * rng.NextGaussian(),
                        domain.lo(1), domain.hi(1));
    } else {
      p[0] = rng.NextUniform(domain.lo(0), domain.hi(0));
      p[1] = rng.NextUniform(domain.lo(1), domain.hi(1));
    }
    data.Append(p);
  }
  return data;
}

Dataset GenerateTigerLike(size_t n, uint64_t seed) {
  // Sparse overall (ρ ≈ 0.02) with very dense corridors.
  const Rect domain = DomainForDensity(n, 0.02);
  RoadNetworkProfile profile;
  return GenerateRoadNetwork(n, domain, profile, seed);
}

}  // namespace dod
