// Copyright 2026 The DOD Authors.

#include "data/normalize.h"

#include <cmath>

#include "common/stats.h"

namespace dod {

Dataset NormalizationTransform::Apply(const Dataset& data) const {
  DOD_CHECK(static_cast<size_t>(data.dims()) == offset.size());
  Dataset out(data.dims());
  out.Reserve(data.size());
  Point p(data.dims());
  for (size_t i = 0; i < data.size(); ++i) {
    const double* src = data[static_cast<PointId>(i)];
    for (int d = 0; d < data.dims(); ++d) {
      p[d] = (src[d] - offset[d]) * scale[d];
    }
    out.Append(p);
  }
  return out;
}

Point NormalizationTransform::Invert(const Point& p) const {
  DOD_CHECK(static_cast<size_t>(p.dims()) == offset.size());
  Point out(p.dims());
  for (int d = 0; d < p.dims(); ++d) {
    out[d] = scale[d] != 0.0 ? p[d] / scale[d] + offset[d] : offset[d];
  }
  return out;
}

NormalizationTransform FitMinMax(const Dataset& data, double range) {
  DOD_CHECK(!data.empty());
  DOD_CHECK(range > 0.0);
  const Rect bounds = data.Bounds();
  NormalizationTransform transform;
  for (int d = 0; d < data.dims(); ++d) {
    transform.offset.push_back(bounds.lo(d));
    const double extent = bounds.Extent(d);
    transform.scale.push_back(extent > 0.0 ? range / extent : 0.0);
  }
  return transform;
}

NormalizationTransform FitZScore(const Dataset& data) {
  DOD_CHECK(!data.empty());
  NormalizationTransform transform;
  for (int d = 0; d < data.dims(); ++d) {
    RunningStats stats;
    for (size_t i = 0; i < data.size(); ++i) {
      stats.Add(data[static_cast<PointId>(i)][d]);
    }
    transform.offset.push_back(stats.mean());
    const double stddev = stats.stddev();
    transform.scale.push_back(stddev > 0.0 ? 1.0 / stddev : 0.0);
  }
  return transform;
}

}  // namespace dod
