// Copyright 2026 The DOD Authors.
//
// Feature normalization. Distance-based outlier semantics are sensitive to
// per-dimension scale: a single radius r is meaningless when one feature
// spans [0, 1] and another [0, 10^6]. These helpers rescale datasets before
// detection, the standard preprocessing for feature-space workloads (e.g.
// the intrusion-detection example).

#ifndef DOD_DATA_NORMALIZE_H_
#define DOD_DATA_NORMALIZE_H_

#include <vector>

#include "common/dataset.h"

namespace dod {

// Per-dimension affine transform x → (x - offset) * scale.
struct NormalizationTransform {
  std::vector<double> offset;
  std::vector<double> scale;

  // Applies the transform to a dataset (same dimensionality).
  Dataset Apply(const Dataset& data) const;

  // Maps a point back to the original space.
  Point Invert(const Point& p) const;
};

// Min-max normalization onto [0, range] per dimension. Degenerate
// dimensions (zero extent) map to 0.
NormalizationTransform FitMinMax(const Dataset& data, double range = 1.0);

// Z-score standardization: zero mean, unit standard deviation per
// dimension. Degenerate dimensions (zero variance) map to 0.
NormalizationTransform FitZScore(const Dataset& data);

}  // namespace dod

#endif  // DOD_DATA_NORMALIZE_H_
