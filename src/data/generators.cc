// Copyright 2026 The DOD Authors.

#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"

namespace dod {

Dataset GenerateUniform(size_t n, const Rect& domain, uint64_t seed) {
  Rng rng(seed);
  Dataset data(domain.dims());
  data.Reserve(n);
  Point p(domain.dims());
  for (size_t i = 0; i < n; ++i) {
    for (int d = 0; d < domain.dims(); ++d) {
      p[d] = rng.NextUniform(domain.lo(d), domain.hi(d));
    }
    data.Append(p);
  }
  return data;
}

Dataset GenerateSettlements(size_t n, const Rect& domain,
                            const SettlementProfile& profile, uint64_t seed) {
  DOD_CHECK(profile.num_cities >= 1);
  Rng rng(seed);
  const int dims = domain.dims();

  // City centers, kept away from the boundary by one sigma.
  std::vector<Point> centers;
  double sigma[kMaxDimensions];
  for (int d = 0; d < dims; ++d) sigma[d] = profile.sigma_frac * domain.Extent(d);
  for (int c = 0; c < profile.num_cities; ++c) {
    Point center(dims);
    for (int d = 0; d < dims; ++d) {
      const double margin = std::min(sigma[d], 0.25 * domain.Extent(d));
      center[d] = rng.NextUniform(domain.lo(d) + margin, domain.hi(d) - margin);
    }
    centers.push_back(center);
  }

  // Zipf-like weights over cities: w_c ∝ 1 / (c+1)^s.
  std::vector<double> cum_weight(centers.size());
  double total = 0.0;
  for (size_t c = 0; c < centers.size(); ++c) {
    total += 1.0 / std::pow(static_cast<double>(c + 1), profile.city_zipf);
    cum_weight[c] = total;
  }

  Dataset data(dims);
  data.Reserve(n);
  Point p(dims);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBernoulli(profile.city_fraction)) {
      // Pick a city by weight, then draw a clamped Gaussian around it.
      const double u = rng.NextDouble() * total;
      const size_t c = static_cast<size_t>(
          std::lower_bound(cum_weight.begin(), cum_weight.end(), u) -
          cum_weight.begin());
      const Point& center = centers[std::min(c, centers.size() - 1)];
      for (int d = 0; d < dims; ++d) {
        const double x = center[d] + sigma[d] * rng.NextGaussian();
        p[d] = std::clamp(x, domain.lo(d), domain.hi(d));
      }
    } else {
      for (int d = 0; d < dims; ++d) {
        p[d] = rng.NextUniform(domain.lo(d), domain.hi(d));
      }
    }
    data.Append(p);
  }
  return data;
}

Rect DomainForDensity(size_t n, double density) {
  DOD_CHECK(density > 0.0);
  const double extent = std::sqrt(static_cast<double>(n) / density);
  return Rect::Cube(2, 0.0, extent);
}

}  // namespace dod
