// Copyright 2026 The DOD Authors.
//
// Core synthetic dataset generators. All generators are deterministic given
// a seed, and emit points inside the requested domain.
//
// Unit calibration: throughout the benches we keep the paper's parameter
// settings r = 5, k = 4 (Sec. IV). With those values the Lemma 4.2 regimes
// fall at density ρ ≈ 0.142 (dense pruning) and ρ ≈ 0.026 (sparse pruning)
// in 2-d, so generator densities in [0.005, 1] sweep Nested-Loop and
// Cell-Based through all three regimes exactly as Fig. 5 does.

#ifndef DOD_DATA_GENERATORS_H_
#define DOD_DATA_GENERATORS_H_

#include <cstdint>

#include "common/dataset.h"

namespace dod {

// `n` points uniformly distributed over `domain`.
Dataset GenerateUniform(size_t n, const Rect& domain, uint64_t seed);

// Parameters of a clustered "settlement" distribution: a Gaussian-mixture
// of cities over a uniform rural background. This is the building block of
// the geo-like workloads (OpenStreetMap stores buildings, which concentrate
// in cities with sparse rural areas between them).
struct SettlementProfile {
  int num_cities = 6;
  // Fraction of points in cities (the rest is uniform rural noise).
  double city_fraction = 0.8;
  // City standard deviation as a fraction of the domain extent.
  double sigma_frac = 0.04;
  // Zipf skew across cities (0 = equal-size cities).
  double city_zipf = 1.0;
};

Dataset GenerateSettlements(size_t n, const Rect& domain,
                            const SettlementProfile& profile, uint64_t seed);

// Square 2-d domain sized so that `n` points yield mean density `density`.
Rect DomainForDensity(size_t n, double density);

}  // namespace dod

#endif  // DOD_DATA_GENERATORS_H_
