// Copyright 2026 The DOD Authors.
//
// Geo-like workloads standing in for the paper's OpenStreetMap extracts
// (Sec. VI-A):
//
//  * Four equal-cardinality regional segments — Ohio, Massachusetts,
//    California, New York — that differ strongly in density: "New York and
//    California are very dense, Ohio is relatively sparse, and
//    Massachusetts is in the middle".
//  * A hierarchical family Massachusetts → New England → United States →
//    Planet whose cardinality grows by ~two orders of magnitude and whose
//    skew grows with it (more sub-regions of wildly differing density).
//
// Densities are calibrated (see generators.h) so that with r = 5, k = 4 the
// regions land in the same Lemma 4.2 regimes as the paper observes: Ohio in
// the sparse/Nested-Loop crossover, CA/NY deep in the dense Cell-Based
// regime, MA in between.

#ifndef DOD_DATA_GEO_LIKE_H_
#define DOD_DATA_GEO_LIKE_H_

#include <cstdint>
#include <string_view>

#include "common/dataset.h"

namespace dod {

enum class GeoRegion {
  kOhio,          // sparse
  kMassachusetts, // intermediate
  kCalifornia,    // dense
  kNewYork,       // densest
};

std::string_view GeoRegionName(GeoRegion region);

// One regional segment with `n` points (the paper uses equal sizes across
// the four regions).
Dataset GenerateGeoRegion(GeoRegion region, size_t n, uint64_t seed);

enum class MapLevel {
  kMassachusetts,
  kNewEngland,
  kUnitedStates,
  kPlanet,
};

std::string_view MapLevelName(MapLevel level);

// Cardinality multiplier of `level` relative to the Massachusetts base
// (paper: 30 M → 4 B, ~133×; we use 1/3/16/64 at bench scale).
size_t MapLevelMultiplier(MapLevel level);

// Hierarchical dataset: `base_n * MapLevelMultiplier(level)` points spread
// over an increasingly large and skewed mosaic of settlement sub-regions
// separated by empty space.
Dataset GenerateHierarchical(MapLevel level, size_t base_n, uint64_t seed);

}  // namespace dod

#endif  // DOD_DATA_GEO_LIKE_H_
