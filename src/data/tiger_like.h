// Copyright 2026 The DOD Authors.
//
// TIGER-like workload: the Census Bureau's TIGER extracts are dominated by
// line features (roads, railroads, rivers). We model them as dense polyline
// corridors — points jittered around randomly placed road segments — over a
// sparse rural background. The result mixes extremely dense 1-d-like
// corridors with near-empty countryside, the distribution on which the
// paper reports DMT's largest win (up to 20×, Fig. 10b).

#ifndef DOD_DATA_TIGER_LIKE_H_
#define DOD_DATA_TIGER_LIKE_H_

#include <cstdint>

#include "common/dataset.h"

namespace dod {

struct RoadNetworkProfile {
  int num_roads = 40;
  // Fraction of points on roads; the rest is uniform rural noise.
  double road_fraction = 0.92;
  // Gaussian jitter around the road center-line, as a fraction of the
  // domain extent.
  double jitter_frac = 0.002;
  // Road length range as fractions of the domain extent.
  double min_length_frac = 0.1;
  double max_length_frac = 0.6;
  // Zipf skew of traffic across roads (highways vs lanes).
  double road_zipf = 1.0;
};

Dataset GenerateRoadNetwork(size_t n, const Rect& domain,
                            const RoadNetworkProfile& profile, uint64_t seed);

// The default TIGER-like bench dataset: `n` points with corridor structure
// at an overall sparse mean density.
Dataset GenerateTigerLike(size_t n, uint64_t seed);

}  // namespace dod

#endif  // DOD_DATA_TIGER_LIKE_H_
