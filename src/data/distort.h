// Copyright 2026 The DOD Authors.
//
// The paper's 2 TB synthetic dataset tool (Sec. VI-A): "creates a
// distortion of the original dataset D by replicating each point p in D
// three times to generate p', p'', p''', each with a random degree of
// alteration on each dimension". The output holds the original points plus
// the altered replicas (4× the input size).

#ifndef DOD_DATA_DISTORT_H_
#define DOD_DATA_DISTORT_H_

#include <cstdint>

#include "common/dataset.h"

namespace dod {

struct DistortOptions {
  // Replicas generated per input point (paper: 3).
  int copies = 3;
  // Maximum per-dimension alteration as a fraction of that dimension's
  // extent; each replica coordinate is shifted by Uniform(-a, +a).
  double max_alteration_frac = 0.01;
  uint64_t seed = 42;
};

Dataset DistortReplicate(const Dataset& base, const DistortOptions& options);

}  // namespace dod

#endif  // DOD_DATA_DISTORT_H_
