// Copyright 2026 The DOD Authors.

#include "data/distort.h"

#include "common/random.h"

namespace dod {

Dataset DistortReplicate(const Dataset& base, const DistortOptions& options) {
  DOD_CHECK(options.copies >= 0);
  DOD_CHECK(!base.empty());
  Rng rng(options.seed);
  const int dims = base.dims();
  const Rect bounds = base.Bounds();
  double amplitude[kMaxDimensions];
  for (int d = 0; d < dims; ++d) {
    amplitude[d] = options.max_alteration_frac * bounds.Extent(d);
  }

  Dataset out(dims);
  out.Reserve(base.size() * (1 + static_cast<size_t>(options.copies)));
  out.AppendAll(base);
  Point p(dims);
  for (int c = 0; c < options.copies; ++c) {
    for (size_t i = 0; i < base.size(); ++i) {
      const double* src = base[static_cast<PointId>(i)];
      for (int d = 0; d < dims; ++d) {
        p[d] = src[d] + rng.NextUniform(-amplitude[d], amplitude[d]);
      }
      out.Append(p);
    }
  }
  return out;
}

}  // namespace dod
