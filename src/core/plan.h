// Copyright 2026 The DOD Authors.
//
// The multi-tactic plan (Sec. III-C / Fig. 6): the joint output of the
// preprocessing job —
//   step 1: partition plan (map side),
//   step 2: algorithm plan (reduce side, Def. 3.4),
//   step 3: allocation plan (partitioner: which partitions go to which
//           reduce task).
// For baseline strategies the same structure carries their fixed algorithm
// and simpler allocations, so the detection job is strategy-agnostic.

#ifndef DOD_CORE_PLAN_H_
#define DOD_CORE_PLAN_H_

#include <vector>

#include "core/config.h"
#include "partition/minibucket.h"
#include "partition/partition_plan.h"

namespace dod {

struct MultiTacticPlan {
  PartitionPlan partition_plan;
  // Detector per cell (parallel to partition_plan.cells()).
  std::vector<AlgorithmKind> algorithm_plan;
  // Reduce task per cell, in [0, num_reduce_tasks).
  std::vector<int> allocation;
  // Planner's estimated workload per cell under its assigned algorithm.
  std::vector<double> estimated_cost;
  // Whether the detection job replicates support points (false only for
  // the Domain baseline, which pays a verification job instead).
  bool uses_supporting_area = true;

  // Estimated per-reduce-task loads under `allocation`.
  std::vector<double> ReducerLoads(int num_reduce_tasks) const;
};

// Builds the plan for `config` from the sampled distribution sketch. This
// is the (centralized, single-reducer) plan-generation stage of the
// preprocessing job.
MultiTacticPlan BuildMultiTacticPlan(const DistributionSketch& sketch,
                                     const DodConfig& config);

}  // namespace dod

#endif  // DOD_CORE_PLAN_H_
