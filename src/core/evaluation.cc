// Copyright 2026 The DOD Authors.

#include "core/evaluation.h"

#include <algorithm>

namespace dod {

double DetectionQuality::precision() const {
  const size_t reported = true_positives + false_positives;
  if (reported == 0) return false_negatives == 0 ? 1.0 : 0.0;
  return static_cast<double>(true_positives) / reported;
}

double DetectionQuality::recall() const {
  const size_t expected = true_positives + false_negatives;
  if (expected == 0) return false_positives == 0 ? 1.0 : 0.0;
  return static_cast<double>(true_positives) / expected;
}

double DetectionQuality::f1() const {
  const double p = precision();
  const double r = recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

DetectionQuality CompareOutlierSets(const std::vector<PointId>& reported,
                                    const std::vector<PointId>& expected) {
  std::vector<PointId> a = reported;
  std::vector<PointId> b = expected;
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());

  DetectionQuality quality;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++quality.true_positives;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++quality.false_positives;
      ++i;
    } else {
      ++quality.false_negatives;
      ++j;
    }
  }
  quality.false_positives += a.size() - i;
  quality.false_negatives += b.size() - j;
  return quality;
}

}  // namespace dod
