// Copyright 2026 The DOD Authors.

#include "core/pipeline.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/distance.h"
#include "common/timer.h"
#include "detection/brute_force.h"
#include "detection/partition_view.h"
#include "durability/checkpoint.h"
#include "durability/memory_budget.h"
#include "durability/payload.h"
#include "durability/run_control.h"
#include "kernels/distance_kernels.h"
#include "kernels/soa_block.h"
#include "observability/metrics.h"
#include "observability/profile.h"
#include "observability/trace.h"

namespace dod {
namespace {

// Job counter charged with an algorithm's distance evaluations; diffing it
// around a detector call isolates the call's evaluations (groups within a
// reduce task run sequentially, so the diff sees only this cell).
const char* EvalCounterName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kNestedLoop:
      return "nested_loop.distance_evals";
    case AlgorithmKind::kCellBased:
      return "cell_based.distance_evals";
    case AlgorithmKind::kBruteForce:
      return "brute_force.distance_evals";
  }
  return "";
}

// Registry histograms fed by the detection reducers. Observations happen
// per executed attempt (a retried attempt observes again), which is still
// deterministic because the attempt schedule is a pure function of the
// fault-injection seed.
void RecordPartitionMetrics(const PartitionProfile& profile) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static const uint32_t kCore = metrics.Id("detect.partition_core_points",
                                           MetricKind::kHistogram);
  static const uint32_t kSupport = metrics.Id(
      "detect.partition_support_points", MetricKind::kHistogram);
  static const uint32_t kSeconds =
      metrics.Id("detect.cell_seconds", MetricKind::kHistogram);
  metrics.Observe(kCore, static_cast<double>(profile.core_points));
  metrics.Observe(kSupport, static_cast<double>(profile.support_points));
  metrics.Observe(kSeconds, profile.measured_seconds);
}

// Shuffle value of the detection job: one point reference with the core /
// support tag of Fig. 3 ("0-p" / "1-p") bit-packed into a single word —
// bit 31 carries the tag, the low 31 bits the point id. Half the in-memory
// footprint of the old {id, bool} struct, and the whole (cell, value)
// shuffle pair packs into 8 bytes.
using TaggedWord = uint32_t;

constexpr TaggedWord kSupportFlag = 0x80000000u;

TaggedWord PackTagged(PointId id, bool support) {
  DOD_CHECK((id & kSupportFlag) == 0);  // ids fit in 31 bits
  return id | (support ? kSupportFlag : 0u);
}
PointId TaggedId(TaggedWord word) { return word & ~kSupportFlag; }
bool TaggedSupport(TaggedWord word) { return (word & kSupportFlag) != 0; }

// Per-cell deterministic seed for the detectors' randomized probe order.
uint64_t CellSeed(uint64_t base, uint32_t cell) {
  return base ^ (0x9E3779B97F4A7C15ULL * (cell + 1));
}

// The arena draws each cell's probe-segment permutation from a stream
// salted with this constant: the detector draws its start offsets from
// CellSeed directly, and starts drawn from the same stream that produced
// the permutation would correlate with the slot order they index into.
constexpr uint64_t kArenaSeedSalt = 0xA5C3D2E1F0B49687ULL;

// Wire size of one shuffled record: coordinates + tag + cell id.
size_t DetectRecordBytes(int dims) {
  return sizeof(double) * static_cast<size_t>(dims) + 1 + sizeof(uint32_t);
}

// Map side of the detection job (Fig. 3's map function): route each point
// of the split's block to its core cell and its supporting cells. Splits
// run concurrently on one shared mapper instance, so routing scratch lives
// on the stack of each Map call.
class DetectMapper : public Mapper<uint32_t, TaggedWord> {
 public:
  DetectMapper(const BlockStore& store, const PartitionPlan& plan,
               const PartitionRouter& router, bool emit_support)
      : store_(store),
        plan_(plan),
        router_(router),
        emit_support_(emit_support) {}

  void Map(size_t split_index, Emitter<uint32_t, TaggedWord>& out) override {
    const Dataset& data = store_.dataset();
    std::vector<uint32_t> support_cells;
    for (PointId id : store_.block(split_index)) {
      const double* p = data[id];
      out.Emit(router_.RouteCore(p), PackTagged(id, false));
      if (emit_support_) {
        support_cells.clear();
        router_.RouteSupport(p, &support_cells);
        for (uint32_t cell : support_cells) {
          out.Emit(cell, PackTagged(id, true));
        }
      }
    }
  }

 private:
  const BlockStore& store_;
  [[maybe_unused]] const PartitionPlan& plan_;
  const PartitionRouter& router_;
  bool emit_support_;
};

// All candidate detectors, built eagerly so concurrent reduce tasks can
// share them without synchronization (DetectOutliers is const/stateless).
class DetectorSet {
 public:
  DetectorSet() {
    for (size_t k = 0; k < 3; ++k) {
      detectors_[k] = MakeDetector(static_cast<AlgorithmKind>(k));
    }
  }
  const Detector& For(AlgorithmKind kind) const {
    return *detectors_[static_cast<size_t>(kind)];
  }

 private:
  std::unique_ptr<Detector> detectors_[3];
};

// Reduce side when supporting areas are on: verdicts are final.
//
// Task-at-a-time: every cell of the reduce task stages into one TaskArena
// — ids first, then a single shared SoA probe build covering all cells —
// and each cell is then detected through its zero-copy PartitionView. No
// per-cell Dataset is materialized and no per-cell probe buffer is built;
// the arena lives on this attempt's stack, keeping the reducer stateless
// across concurrent tasks.
class DetectReducer : public Reducer<uint32_t, TaggedWord, PointId> {
 public:
  // `control` / `memory` (optional, borrowed): per-cell deadline and
  // cancellation checks, and the budget the task arena charges against.
  DetectReducer(const Dataset& data, const MultiTacticPlan& plan,
                const DetectionParams& params, PartitionProfiler* profiler,
                const RunControl* control, MemoryBudget* memory)
      : data_(data),
        plan_(plan),
        params_(params),
        profiler_(profiler),
        control_(control),
        memory_(memory) {}

  Status TryReduceTask(const GroupedView<uint32_t, TaggedWord>& groups,
                       std::vector<PointId>& out,
                       Counters& counters) override {
    // Stage every cell's partition: core points first, then support points
    // (the same local ordering the per-cell gathering used to produce).
    TaskArena arena(data_, memory_);
    DOD_RETURN_IF_ERROR(
        arena.TryReserve(groups.num_groups(), groups.num_records()));
    for (size_t g = 0; g < groups.num_groups(); ++g) {
      const size_t group_size = groups.size(g);
      arena.BeginCell();
      size_t num_core = 0;
      for (size_t i = 0; i < group_size; ++i) {
        const TaggedWord record = groups.value(g, i);
        if (!TaggedSupport(record)) {
          arena.AddPoint(TaggedId(record));
          ++num_core;
        }
      }
      for (size_t i = 0; i < group_size; ++i) {
        const TaggedWord record = groups.value(g, i);
        if (TaggedSupport(record)) arena.AddPoint(TaggedId(record));
      }
      arena.EndCell(num_core,
                    CellSeed(params_.seed, groups.key(g)) ^ kArenaSeedSalt);
    }
    DOD_RETURN_IF_ERROR(arena.TryBuildProbes());

    for (size_t g = 0; g < groups.num_groups(); ++g) {
      // Cell granularity: a fired deadline or cancellation stops between
      // cells, not mid-kernel, so the abort latency is one cell's work.
      if (control_ != nullptr) DOD_RETURN_IF_ERROR(control_->Check());
      const uint32_t cell = groups.key(g);
      const PartitionView view = arena.View(g);
      const size_t num_core = view.num_core();

      const AlgorithmKind algorithm = plan_.algorithm_plan[cell];
      PartitionProfile profile;
      profile.cell = cell;
      profile.algorithm = AlgorithmKindName(algorithm);
      profile.core_points = num_core;
      profile.support_points = view.size() - num_core;
      profile.area = plan_.partition_plan.cell(cell).bounds.Area();
      profile.density = profile.area > 0.0
                            ? static_cast<double>(num_core) / profile.area
                            : 0.0;
      profile.predicted_cost = cell < plan_.estimated_cost.size()
                                   ? plan_.estimated_cost[cell]
                                   : 0.0;

      if (num_core > 0) {
        trace::Span span("detect", "cell");
        span.Arg("cell", cell)
            .Arg("algorithm", profile.algorithm.c_str())
            .Arg("core", num_core)
            .Arg("support", profile.support_points);
        const char* eval_counter = EvalCounterName(algorithm);
        const uint64_t evals_before = counters.Get(eval_counter);
        StopWatch detect_watch;
        const Detector& detector = detectors_.For(algorithm);
        DetectionParams params = params_;
        params.seed = CellSeed(params_.seed, cell);
        const std::vector<uint32_t> local =
            detector.DetectOutliers(view, params, &counters);
        profile.measured_seconds = detect_watch.ElapsedSeconds();
        profile.measured_distance_evals =
            counters.Get(eval_counter) - evals_before;
        for (uint32_t index : local) out.push_back(view.id(index));
        counters.Increment(std::string("cells.") +
                           AlgorithmKindName(algorithm));
      }
      if (profiler_ != nullptr) profiler_->Record(profile);
      RecordPartitionMetrics(profile);
    }
    return Status::Ok();
  }

 private:
  const Dataset& data_;
  const MultiTacticPlan& plan_;
  const DetectionParams& params_;
  PartitionProfiler* profiler_;
  const RunControl* control_;
  MemoryBudget* memory_;
  DetectorSet detectors_;
};

// A locally-detected outlier of the Domain baseline: a candidate until the
// verification job has seen the points of neighboring cells.
struct Candidate {
  PointId id = 0;
  // Neighbors found inside the candidate's own cell (< k by construction).
  int32_t partial = 0;
};

// Reduce side without supporting areas (Domain baseline job 1): detect
// locally; inlier verdicts are final, outliers become candidates carrying
// their partial neighbor counts. Task-at-a-time like DetectReducer: one
// shared probe arena per task, zero-copy views per cell, and the partial
// neighbor counts come off the cell's probe segment with the kernels
// (cap-free, so the counts stay exact).
class DomainDetectReducer : public Reducer<uint32_t, TaggedWord, Candidate> {
 public:
  DomainDetectReducer(const Dataset& data, const MultiTacticPlan& plan,
                      const DetectionParams& params,
                      PartitionProfiler* profiler, const RunControl* control,
                      MemoryBudget* memory)
      : data_(data),
        plan_(plan),
        params_(params),
        profiler_(profiler),
        control_(control),
        memory_(memory) {}

  Status TryReduceTask(const GroupedView<uint32_t, TaggedWord>& groups,
                       std::vector<Candidate>& out,
                       Counters& counters) override {
    // Without supporting areas every shipped point is core.
    TaskArena arena(data_, memory_);
    DOD_RETURN_IF_ERROR(
        arena.TryReserve(groups.num_groups(), groups.num_records()));
    for (size_t g = 0; g < groups.num_groups(); ++g) {
      const size_t group_size = groups.size(g);
      arena.BeginCell();
      for (size_t i = 0; i < group_size; ++i) {
        arena.AddPoint(TaggedId(groups.value(g, i)));
      }
      arena.EndCell(group_size,
                    CellSeed(params_.seed, groups.key(g)) ^ kArenaSeedSalt);
    }
    DOD_RETURN_IF_ERROR(arena.TryBuildProbes());

    const double sq_radius = params_.radius * params_.radius;
    const KernelOps& ops = GetKernelOps(params_.kernels);
    for (size_t g = 0; g < groups.num_groups(); ++g) {
      if (control_ != nullptr) DOD_RETURN_IF_ERROR(control_->Check());
      const uint32_t cell = groups.key(g);
      const PartitionView view = arena.View(g);
      const AlgorithmKind algorithm = plan_.algorithm_plan[cell];
      PartitionProfile profile;
      profile.cell = cell;
      profile.algorithm = AlgorithmKindName(algorithm);
      profile.core_points = view.size();
      profile.area = plan_.partition_plan.cell(cell).bounds.Area();
      profile.density = profile.area > 0.0
                            ? static_cast<double>(view.size()) / profile.area
                            : 0.0;
      profile.predicted_cost = cell < plan_.estimated_cost.size()
                                   ? plan_.estimated_cost[cell]
                                   : 0.0;
      trace::Span span("detect", "cell");
      span.Arg("cell", cell)
          .Arg("algorithm", profile.algorithm.c_str())
          .Arg("core", view.size());
      const char* eval_counter = EvalCounterName(algorithm);
      const uint64_t evals_before = counters.Get(eval_counter);
      StopWatch detect_watch;
      const Detector& detector = detectors_.For(algorithm);
      DetectionParams params = params_;
      params.seed = CellSeed(params_.seed, cell);
      const std::vector<uint32_t> local =
          detector.DetectOutliers(view, params, &counters);
      profile.measured_seconds = detect_watch.ElapsedSeconds();
      profile.measured_distance_evals =
          counters.Get(eval_counter) - evals_before;
      if (profiler_ != nullptr) profiler_->Record(profile);
      RecordPartitionMetrics(profile);

      // Exact partial neighbor count for each candidate (bounded by k).
      for (uint32_t index : local) {
        uint64_t ignored = 0;
        const int32_t partial = static_cast<int32_t>(ops.count_within_radius(
            view.probes(), view.probe_begin(), view.probe_end(),
            view.point(index), sq_radius, /*skip_id=*/index, /*cap=*/-1,
            &ignored));
        out.push_back(Candidate{view.id(index), partial});
      }
      counters.Increment("domain.candidates", local.size());
    }
    return Status::Ok();
  }

 private:
  const Dataset& data_;
  const MultiTacticPlan& plan_;
  const DetectionParams& params_;
  PartitionProfiler* profiler_;
  const RunControl* control_;
  MemoryBudget* memory_;
  DetectorSet detectors_;
};

// Shuffle record of the verification job: point id and candidate flag
// bit-packed into one word, plus the partial neighbor count candidates
// carry (zero for border points).
struct VerifyRecord {
  TaggedWord word = 0;
  int32_t partial = 0;
};

// Wire size of one verification record: coordinates + cell id + candidate
// flag, plus the partial neighbor count candidates carry. Variable-size —
// this is what the engine's per-record size callback accounts for.
size_t VerifyRecordBytes(int dims, const VerifyRecord& record) {
  return sizeof(double) * static_cast<size_t>(dims) + sizeof(uint32_t) + 1 +
         (TaggedSupport(record.word) ? sizeof(int32_t) : 0);
}

// Prepends job context to a task failure bubbling out of RunMapReduce.
Status AnnotateJobError(const char* job, const Status& status) {
  return Status(status.code(), std::string(job) + ": " + status.message());
}

// Profile rows ride the reduce-task checkpoints: a resumed run skips the
// committed tasks entirely, so the per-partition profiles those tasks
// recorded (part of JobStats::partition_profiles, i.e. of the output) can
// only come back from the payload.
void WriteProfile(const PartitionProfile& profile, PayloadWriter& writer) {
  writer.U32(profile.cell);
  writer.String(profile.algorithm);
  writer.U64(profile.core_points);
  writer.U64(profile.support_points);
  writer.F64(profile.area);
  writer.F64(profile.density);
  writer.F64(profile.predicted_cost);
  writer.U64(profile.measured_distance_evals);
  writer.F64(profile.measured_seconds);
}

Status ReadProfile(PayloadReader& reader, PartitionProfile* profile) {
  DOD_RETURN_IF_ERROR(reader.U32(&profile->cell));
  DOD_RETURN_IF_ERROR(reader.String(&profile->algorithm));
  DOD_RETURN_IF_ERROR(reader.U64(&profile->core_points));
  DOD_RETURN_IF_ERROR(reader.U64(&profile->support_points));
  DOD_RETURN_IF_ERROR(reader.F64(&profile->area));
  DOD_RETURN_IF_ERROR(reader.F64(&profile->density));
  DOD_RETURN_IF_ERROR(reader.F64(&profile->predicted_cost));
  DOD_RETURN_IF_ERROR(reader.U64(&profile->measured_distance_evals));
  DOD_RETURN_IF_ERROR(reader.F64(&profile->measured_seconds));
  return Status::Ok();
}

// Job key guarding resume: checkpoints written under a different
// configuration or dataset shape must be refused, or the engine would
// splice incompatible partial outputs. Everything that shapes the task
// outputs goes in; num_threads deliberately stays out (resuming on a
// different thread count is supported and byte-identical), and so does the
// fault spec (the resumed run typically disables the crash that created
// the checkpoints). The spill policy also stays out: spilled and
// in-memory shuffles commit byte-identical outputs, so resuming with a
// different --spill_dir/--spill_threshold_mb is supported.
std::string ConfigFingerprint(const DodConfig& config, const Dataset& data) {
  PayloadWriter w;
  w.String(config.Label());
  w.F64(config.params.radius);
  w.U64(static_cast<uint64_t>(config.params.min_neighbors));
  w.U64(config.seed);
  w.U64(static_cast<uint64_t>(config.shuffle));
  w.U64(static_cast<uint64_t>(config.num_reduce_tasks));
  w.U64(config.num_blocks);
  w.U64(config.target_partitions);
  w.U64(data.size());
  w.U64(static_cast<uint64_t>(data.dims()));
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(w.str())));
  return std::string("dod-") + hex;
}

// Map side of the verification job: every point is shipped to the
// neighboring cells whose r-extension contains it — exactly the supporting
// points the first job skipped. The mappers of this second job run with no
// knowledge of where job 1 found candidates (shared-nothing: there is no
// cross-job coordination channel), so the border replication is
// unconditional; this re-reading and re-distribution is what makes the
// Domain baseline a multi-job solution with "prohibitive costs" (Sec. I).
// The first split additionally re-emits the candidates (a small side
// input) to their home cells.
class VerifyMapper : public Mapper<uint32_t, VerifyRecord> {
 public:
  VerifyMapper(const BlockStore& store, const PartitionRouter& router,
               const std::vector<Candidate>& candidates)
      : store_(store), router_(router), candidates_(candidates) {}

  void Map(size_t split_index, Emitter<uint32_t, VerifyRecord>& out) override {
    const Dataset& data = store_.dataset();
    if (split_index == 0) {
      for (const Candidate& candidate : candidates_) {
        out.Emit(router_.RouteCore(data[candidate.id]),
                 VerifyRecord{PackTagged(candidate.id, true),
                              candidate.partial});
      }
    }
    std::vector<uint32_t> support_cells;
    for (PointId id : store_.block(split_index)) {
      const double* p = data[id];
      support_cells.clear();
      router_.RouteSupport(p, &support_cells);
      for (uint32_t cell : support_cells) {
        out.Emit(cell, VerifyRecord{PackTagged(id, false), 0});
      }
    }
  }

 private:
  const BlockStore& store_;
  const PartitionRouter& router_;
  const std::vector<Candidate>& candidates_;
};

// Reduce side of the verification job: count the candidates' remaining
// neighbors among the shipped border points. The border points of every
// cell in the task stage into one shared probe arena; each candidate then
// takes a capped kernel count against its cell's segment (capped at the
// verdict threshold — the verdict is identical to the per-pair scan with
// early exit it replaces).
class VerifyReducer : public Reducer<uint32_t, VerifyRecord, PointId> {
 public:
  VerifyReducer(const Dataset& data, const DetectionParams& params,
                const RunControl* control, MemoryBudget* memory)
      : data_(data), params_(params), control_(control), memory_(memory) {}

  Status TryReduceTask(const GroupedView<uint32_t, VerifyRecord>& groups,
                       std::vector<PointId>& out,
                       Counters& counters) override {
    // Split each group into its candidates and its border points; only the
    // border points go into the arena (they are the only probe targets).
    TaskArena arena(data_, memory_);
    DOD_RETURN_IF_ERROR(
        arena.TryReserve(groups.num_groups(), groups.num_records()));
    std::vector<Candidate> candidates;
    std::vector<size_t> candidate_offsets;
    candidate_offsets.reserve(groups.num_groups() + 1);
    for (size_t g = 0; g < groups.num_groups(); ++g) {
      candidate_offsets.push_back(candidates.size());
      const size_t group_size = groups.size(g);
      arena.BeginCell();
      size_t border = 0;
      for (size_t i = 0; i < group_size; ++i) {
        const VerifyRecord& record = groups.value(g, i);
        if (TaggedSupport(record.word)) {
          candidates.push_back(
              Candidate{TaggedId(record.word), record.partial});
        } else {
          arena.AddPoint(TaggedId(record.word));
          ++border;
        }
      }
      arena.EndCell(border,
                    CellSeed(params_.seed, groups.key(g)) ^ kArenaSeedSalt);
    }
    candidate_offsets.push_back(candidates.size());
    DOD_RETURN_IF_ERROR(arena.TryBuildProbes());

    const double sq_radius = params_.radius * params_.radius;
    const KernelOps& ops = GetKernelOps(params_.kernels);
    for (size_t g = 0; g < groups.num_groups(); ++g) {
      if (control_ != nullptr) DOD_RETURN_IF_ERROR(control_->Check());
      const PartitionView view = arena.View(g);
      for (size_t c = candidate_offsets[g]; c < candidate_offsets[g + 1];
           ++c) {
        const Candidate& candidate = candidates[c];
        int neighbors = candidate.partial;
        if (neighbors < params_.min_neighbors && !view.empty()) {
          uint64_t ignored = 0;
          // A candidate never appears among its own cell's border points
          // (support routing excludes the home cell), so no slot needs
          // skipping.
          neighbors += ops.count_within_radius(
              view.probes(), view.probe_begin(), view.probe_end(),
              data_[candidate.id], sq_radius, /*skip_id=*/kSoaInvalidId,
              params_.min_neighbors - neighbors, &ignored);
        }
        if (neighbors < params_.min_neighbors) {
          out.push_back(candidate.id);
        } else {
          counters.Increment("domain.rescued_candidates");
        }
      }
    }
    return Status::Ok();
  }

 private:
  const Dataset& data_;
  const DetectionParams& params_;
  const RunControl* control_;
  MemoryBudget* memory_;
};

}  // namespace

Result<DodResult> DodPipeline::Run(const Dataset& data) const {
  return Run(data, nullptr);
}

Result<DodResult> DodPipeline::Run(const Dataset& data,
                                   RunDiagnostics* diagnostics) const {
  if (data.empty()) {
    return Status::InvalidArgument(
        "DodPipeline::Run: dataset is empty — nothing to detect on");
  }
  const DodConfig& config = config_;
  StopWatch wall;
  DodResult result;
  trace::Span run_span("pipeline", "run");
  run_span.Arg("config", config.Label().c_str())
      .Arg("points", static_cast<uint64_t>(data.size()));

  // The deadline clock starts here and covers preprocessing and every job;
  // the budget bounds arena and shuffle-scratch allocations across both
  // jobs (0 = unlimited, accounting still feeds the peak gauge).
  const RunControl control =
      RunControl::WithDeadline(config.deadline_seconds, config.cancel_token);
  MemoryBudget memory(config.memory_budget_mb * (1024ull * 1024ull));
  const RunControl* control_ptr = control.active() ? &control : nullptr;

  // ---- Preprocessing job -------------------------------------------------
  // Distribution estimation (sampling map tasks) + plan generation (single
  // reducer). Domain / uniSpace need no statistics — only the domain
  // bounds, which come from dataset metadata — so their preprocessing time
  // is zero, matching Fig. 10(a).
  const Rect domain = data.Bounds();
  BlockStore store(data, config.num_blocks, config.seed ^ 0xB10C);

  const bool needs_sketch = config.strategy == StrategyKind::kDDriven ||
                            config.strategy == StrategyKind::kCDriven ||
                            config.strategy == StrategyKind::kDmt;
  const double sampling_rate =
      EffectiveSamplingRate(config.sampler, data.size());
  DistributionSketch sketch{
      MiniBucketGrid(domain,
                     EffectiveBucketsPerDim(config.sampler, data.size())),
      sampling_rate, 0};
  double preprocess_seconds = 0.0;
  if (needs_sketch) {
    // The sampling map tasks scan the full input once; charge the HDFS
    // read like any other map stage.
    trace::Span sample_span("pipeline", "sample");
    sample_span.Arg("blocks", static_cast<uint64_t>(store.num_blocks()));
    const double read_bytes_per_second =
        config.cluster.disk_read_mbps_per_slot * 1e6;
    std::vector<double> sample_task_seconds;
    Rng sample_rng(config.sampler.seed ^ config.seed);
    for (size_t b = 0; b < store.num_blocks(); ++b) {
      if (control_ptr != nullptr) DOD_RETURN_IF_ERROR(control_ptr->Check());
      StopWatch task;
      sketch.sample_size += SampleBlockInto(data, store.block(b),
                                            sampling_rate, sample_rng,
                                            &sketch.grid);
      sample_task_seconds.push_back(
          task.ElapsedSeconds() +
          store.block(b).size() * store.BytesPerRecord() /
              read_bytes_per_second);
    }
    preprocess_seconds +=
        Makespan(sample_task_seconds, config.cluster.map_slots());
    sample_span.Arg("sample_size", sketch.sample_size);
  }

  StopWatch plan_watch;
  {
    trace::Span plan_span("pipeline", "plan");
    result.plan = BuildMultiTacticPlan(sketch, config);
    plan_span.Arg("partitions", static_cast<uint64_t>(
                                    result.plan.partition_plan.num_cells()));
  }
  preprocess_seconds += plan_watch.ElapsedSeconds();
  result.breakdown.preprocess_seconds = preprocess_seconds;

  {
    MetricsRegistry& metrics = MetricsRegistry::Global();
    static const uint32_t kRuns =
        metrics.Id("pipeline.runs", MetricKind::kCounter);
    static const uint32_t kPartitions =
        metrics.Id("pipeline.partitions", MetricKind::kGauge);
    static const uint32_t kPreprocess =
        metrics.Id("pipeline.preprocess_seconds", MetricKind::kHistogram);
    metrics.Increment(kRuns);
    metrics.SetMax(kPartitions, static_cast<double>(
                                    result.plan.partition_plan.num_cells()));
    metrics.Observe(kPreprocess, preprocess_seconds);
  }

  // Plan generation can be slow on large sketches; give the deadline a
  // checkpoint between preprocessing and the jobs.
  if (control_ptr != nullptr) DOD_RETURN_IF_ERROR(control_ptr->Check());

  const PartitionPlan& partition_plan = result.plan.partition_plan;
  PartitionRouter router(partition_plan);
  const std::vector<int>& allocation = result.plan.allocation;
  const std::function<int(const uint32_t&)> partition_fn =
      [&allocation](const uint32_t& cell) { return allocation[cell]; };

  // One checkpoint store per job: the detection and verification jobs use
  // the same task indices, so their records must not share a directory.
  // The fingerprint refuses resume across configurations (see
  // ConfigFingerprint).
  std::unique_ptr<CheckpointStore> detect_store;
  std::unique_ptr<CheckpointStore> verify_store;
  if (!config.checkpoint_dir.empty()) {
    const std::string job_key = ConfigFingerprint(config, data);
    DOD_ASSIGN_OR_RETURN(
        detect_store,
        CheckpointStore::Open(config.checkpoint_dir + "/detect", job_key,
                              config.resume));
    if (!result.plan.uses_supporting_area) {
      DOD_ASSIGN_OR_RETURN(
          verify_store,
          CheckpointStore::Open(config.checkpoint_dir + "/verify", job_key,
                                config.resume));
    }
  }

  JobSpec spec;
  spec.num_reduce_tasks = config.num_reduce_tasks;
  spec.num_threads = config.num_threads;
  spec.cluster = config.cluster;
  spec.faults = config.faults;
  spec.retry = config.retry;
  spec.shuffle = config.shuffle;
  spec.spill.dir = config.spill_dir;
  spec.spill.threshold_bytes = config.spill_threshold_mb * (uint64_t{1} << 20);
  spec.resume = config.resume;
  spec.control = control_ptr;
  spec.memory = &memory;
  spec.split_input_bytes.reserve(store.num_blocks());
  spec.split_record_hints.reserve(store.num_blocks());
  for (size_t b = 0; b < store.num_blocks(); ++b) {
    spec.split_input_bytes.push_back(store.block(b).size() *
                                     store.BytesPerRecord());
    // Emission estimate for bucket pre-sizing: one core record per point,
    // plus a couple of support replicas when supporting areas are on.
    spec.split_record_hints.push_back(
        store.block(b).size() * (result.plan.uses_supporting_area ? 3 : 1));
  }
  const size_t record_bytes = DetectRecordBytes(data.dims());
  // Point records ship the point's coordinates, so their wire size depends
  // on the dataset — computed per record via the engine's size callback.
  const int dims = data.dims();
  const std::function<size_t(const uint32_t&, const TaggedWord&)>
      detect_record_size = [record_bytes](const uint32_t&,
                                          const TaggedWord&) {
        return record_bytes;
      };

  // ---- Detection job ------------------------------------------------------
  // The reducers record one predicted-vs-measured profile per reduced cell;
  // keyed by cell, so retried attempts overwrite instead of duplicating.
  PartitionProfiler profiler;

  // The detection job's checkpoint payloads carry the profile rows of the
  // task's cells alongside the engine-owned output (the rows feed
  // JobStats::partition_profiles, so a resumed run must recover them). The
  // cells of reduce task `index` are exactly the ones the allocation plan
  // assigned to it.
  JobSpec detect_spec = spec;
  detect_spec.checkpoint = detect_store.get();
  if (diagnostics != nullptr) {
    detect_spec.partial_stats = &diagnostics->detect_stats;
  }
  detect_spec.checkpoint_extra = [&profiler, &allocation](
                                     TaskPhase phase, int index,
                                     PayloadWriter& writer) {
    if (phase != TaskPhase::kReduce) return;  // map tasks record no profiles
    std::vector<PartitionProfile> rows;
    for (uint32_t cell = 0; cell < allocation.size(); ++cell) {
      PartitionProfile profile;
      if (allocation[cell] == index && profiler.Get(cell, &profile)) {
        rows.push_back(std::move(profile));
      }
    }
    writer.U64(rows.size());
    for (const PartitionProfile& row : rows) WriteProfile(row, writer);
  };
  detect_spec.restore_extra = [&profiler](TaskPhase phase, int /*index*/,
                                          PayloadReader& reader) -> Status {
    if (phase != TaskPhase::kReduce) return Status::Ok();
    uint64_t count = 0;
    DOD_RETURN_IF_ERROR(reader.U64(&count));
    for (uint64_t i = 0; i < count; ++i) {
      PartitionProfile profile;
      DOD_RETURN_IF_ERROR(ReadProfile(reader, &profile));
      // Re-observing the registry histograms keeps the metric totals
      // consistent with a run that executed the task (the profiles are
      // output; the histograms are their observability mirror).
      RecordPartitionMetrics(profile);
      profiler.Record(profile);
    }
    return Status::Ok();
  };

  if (result.plan.uses_supporting_area) {
    trace::Span job_span("pipeline", "detect_job");
    DetectMapper mapper(store, partition_plan, router, /*emit_support=*/true);
    DetectReducer reducer(data, result.plan, config.params, &profiler,
                          control_ptr, &memory);
    Result<JobOutput<PointId>> job =
        RunMapReduce<uint32_t, TaggedWord, PointId>(
            store.num_blocks(), mapper, reducer, partition_fn, detect_spec,
            record_bytes, detect_record_size, &allocation);
    if (!job.ok()) return AnnotateJobError("detection job", job.status());
    result.outliers = std::move(job.value().output);
    result.detect_stats = std::move(job.value().stats);
    result.breakdown.detect = result.detect_stats.stage_times;
  } else {
    // Domain baseline: job 1 detects locally, job 2 verifies candidates.
    trace::Span job_span("pipeline", "detect_job");
    DetectMapper mapper(store, partition_plan, router, /*emit_support=*/false);
    DomainDetectReducer reducer(data, result.plan, config.params, &profiler,
                                control_ptr, &memory);
    Result<JobOutput<Candidate>> job =
        RunMapReduce<uint32_t, TaggedWord, Candidate>(
            store.num_blocks(), mapper, reducer, partition_fn, detect_spec,
            record_bytes, detect_record_size, &allocation);
    if (!job.ok()) return AnnotateJobError("detection job", job.status());
    result.detect_stats = std::move(job.value().stats);
    result.breakdown.detect = result.detect_stats.stage_times;

    trace::Span verify_span("pipeline", "verify_job");
    JobSpec verify_spec = spec;
    verify_spec.checkpoint = verify_store.get();
    if (diagnostics != nullptr) {
      verify_spec.partial_stats = &diagnostics->verify_stats;
    }
    VerifyMapper verify_mapper(store, router, job.value().output);
    VerifyReducer verify_reducer(data, config.params, control_ptr, &memory);
    Result<JobOutput<PointId>> verify =
        RunMapReduce<uint32_t, VerifyRecord, PointId>(
            store.num_blocks(), verify_mapper, verify_reducer, partition_fn,
            verify_spec, record_bytes,
            [dims](const uint32_t&, const VerifyRecord& record) {
              return VerifyRecordBytes(dims, record);
            },
            &allocation);
    if (!verify.ok()) {
      return AnnotateJobError("verification job", verify.status());
    }
    result.outliers = std::move(verify.value().output);
    result.verify_stats = std::move(verify.value().stats);
    result.breakdown.verify = result.verify_stats.stage_times;
  }
  result.detect_stats.partition_profiles = profiler.Sorted();
  if (diagnostics != nullptr) {
    // On success the diagnostics mirror the result's stats (on failure the
    // engine filled them with the partial-progress deltas before
    // returning).
    diagnostics->detect_stats = result.detect_stats;
    diagnostics->verify_stats = result.verify_stats;
  }

  std::sort(result.outliers.begin(), result.outliers.end());
  result.wall_seconds = wall.ElapsedSeconds();
  {
    MetricsRegistry& metrics = MetricsRegistry::Global();
    static const uint32_t kOutliers =
        metrics.Id("pipeline.outliers", MetricKind::kCounter);
    static const uint32_t kWall =
        metrics.Id("pipeline.wall_seconds", MetricKind::kHistogram);
    metrics.Increment(kOutliers, result.outliers.size());
    metrics.Observe(kWall, result.wall_seconds);
  }
  return result;
}

std::vector<PointId> DetectOutliersCentralized(const Dataset& data,
                                               AlgorithmKind algorithm,
                                               const DetectionParams& params) {
  const std::unique_ptr<Detector> detector = MakeDetector(algorithm);
  std::vector<uint32_t> local =
      detector->DetectOutliers(data, data.size(), params, nullptr);
  return std::vector<PointId>(local.begin(), local.end());
}

}  // namespace dod
