// Copyright 2026 The DOD Authors.
//
// Parameter advisor for the distance-threshold definition. The paper takes
// (r, k) as given inputs; in practice choosing r is the hard part — too
// small flags everything, too large flags nothing. This module suggests r
// from the data: sample points, estimate each sample's k-distance (with a
// density correction for the sampling rate), and pick the quantile that
// makes roughly the requested fraction of points outliers.

#ifndef DOD_CORE_PARAMETER_ADVISOR_H_
#define DOD_CORE_PARAMETER_ADVISOR_H_

#include <cstdint>

#include "common/dataset.h"
#include "detection/detector.h"

namespace dod {

struct AdvisorOptions {
  // Neighbor-count threshold k the user intends to run with.
  int min_neighbors = 4;
  // Desired fraction of points reported as outliers (approximate).
  double target_outlier_fraction = 0.01;
  // Sample size used for the estimate.
  size_t sample_size = 2000;
  uint64_t seed = 42;
};

struct ParameterSuggestion {
  DetectionParams params;
  // The sampled k-distance at the chosen quantile, before rate correction.
  double sampled_k_distance = 0.0;
  // Sampling rate used (1.0 when the dataset fits the sample budget).
  double sampling_rate = 1.0;
};

// Suggests r for the given k and target outlier fraction.
//
// Method: draw a sample S at rate p = |S| / |D|; within S, each point's
// k-distance estimates its (k/p)-distance in D, so the k-distance in D is
// recovered by the uniform-density scaling r_D ≈ r_S · p^(1/dims). The
// suggested r is the (1 − target_fraction) quantile of the corrected
// k-distances: points whose true k-distance exceeds r — roughly the target
// fraction — become outliers.
ParameterSuggestion SuggestParameters(const Dataset& data,
                                      const AdvisorOptions& options);

}  // namespace dod

#endif  // DOD_CORE_PARAMETER_ADVISOR_H_
