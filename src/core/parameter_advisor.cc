// Copyright 2026 The DOD Authors.

#include "core/parameter_advisor.h"

#include <algorithm>
#include <cmath>

#include "common/distance.h"
#include "common/random.h"
#include "extensions/knn_outliers.h"

namespace dod {

ParameterSuggestion SuggestParameters(const Dataset& data,
                                      const AdvisorOptions& options) {
  DOD_CHECK(!data.empty());
  DOD_CHECK(options.min_neighbors >= 1);
  DOD_CHECK(options.target_outlier_fraction > 0.0 &&
            options.target_outlier_fraction < 1.0);

  ParameterSuggestion suggestion;
  suggestion.params.min_neighbors = options.min_neighbors;
  suggestion.params.seed = options.seed;

  // Uniform sample (without replacement) of at most sample_size points.
  Rng rng(options.seed);
  Dataset sample(data.dims());
  if (data.size() <= options.sample_size) {
    sample = data;
    suggestion.sampling_rate = 1.0;
  } else {
    std::vector<uint32_t> perm = RandomPermutation(data.size(), rng);
    sample.Reserve(options.sample_size);
    for (size_t i = 0; i < options.sample_size; ++i) {
      sample.Append(data[perm[i]]);
    }
    suggestion.sampling_rate =
        static_cast<double>(options.sample_size) / data.size();
  }

  // k-distance of every sampled point within the sample.
  std::vector<double> k_distances;
  k_distances.reserve(sample.size());
  for (PointId i = 0; i < sample.size(); ++i) {
    const double d = KDistance(sample, i, options.min_neighbors);
    if (std::isfinite(d)) k_distances.push_back(d);
  }
  if (k_distances.empty()) {
    // Fewer points than k: any radius flags everything; report the domain
    // diameter as a defensive default.
    const Rect bounds = data.Bounds();
    suggestion.params.radius = std::max(
        1e-12, Euclidean(bounds.min().data(), bounds.max().data(),
                         data.dims()));
    return suggestion;
  }

  const double quantile = 1.0 - options.target_outlier_fraction;
  const size_t index = std::min(
      k_distances.size() - 1,
      static_cast<size_t>(quantile * (k_distances.size() - 1) + 0.5));
  std::nth_element(k_distances.begin(), k_distances.begin() + index,
                   k_distances.end());
  suggestion.sampled_k_distance = k_distances[index];

  // Density correction: a rate-p sample is p× sparser, so distances shrink
  // by p^(1/d) when mapped back to the full data.
  const double correction =
      std::pow(suggestion.sampling_rate, 1.0 / data.dims());
  suggestion.params.radius =
      std::max(1e-12, suggestion.sampled_k_distance * correction);
  return suggestion;
}

}  // namespace dod
