// Copyright 2026 The DOD Authors.

#include "core/report.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <vector>

namespace dod {
namespace {

void Appendf(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string& out, const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  out += buf;
}

}  // namespace

std::string FormatRunSummary(const DodConfig& config, const DodResult& result,
                             size_t input_points) {
  std::string out;
  Appendf(out, "%s: %zu outliers / %zu pts, %.4fs (%zu partitions)",
          config.Label().c_str(), result.outliers.size(), input_points,
          result.breakdown.total(), result.plan.partition_plan.num_cells());
  return out;
}

std::string FormatRunReport(const DodConfig& config, const DodResult& result,
                            size_t input_points) {
  std::string out;
  Appendf(out, "configuration : %s (r=%g, k=%d)\n", config.Label().c_str(),
          config.params.radius, config.params.min_neighbors);
  Appendf(out, "input         : %zu points\n", input_points);
  Appendf(out, "outliers      : %zu (%.3f%%)\n", result.outliers.size(),
          input_points > 0
              ? 100.0 * result.outliers.size() / input_points
              : 0.0);

  size_t nested_loop = 0, cell_based = 0;
  for (AlgorithmKind kind : result.plan.algorithm_plan) {
    (kind == AlgorithmKind::kNestedLoop ? nested_loop : cell_based)++;
  }
  Appendf(out, "plan          : %zu partitions (%zu Nested-Loop, %zu "
               "Cell-Based), support %s\n",
          result.plan.partition_plan.num_cells(), nested_loop, cell_based,
          result.plan.uses_supporting_area ? "on" : "off (verify job)");

  Appendf(out, "stage times   : preprocess %.4fs | map %.4fs | shuffle "
               "%.4fs | reduce %.4fs",
          result.breakdown.preprocess_seconds,
          result.breakdown.detect.map_seconds,
          result.breakdown.detect.shuffle_seconds,
          result.breakdown.detect.reduce_seconds);
  if (result.breakdown.verify.total() > 0.0) {
    Appendf(out, " | verify %.4fs", result.breakdown.verify.total());
  }
  Appendf(out, "\nend-to-end    : %.4fs simulated (%.4fs wall)\n",
          result.breakdown.total(), result.wall_seconds);
  // Simulated makespan above; what this machine's threads actually did
  // below. With --threads=1 the wall times are the serial task sums.
  Appendf(out,
          "parallelism   : %d threads | map wall %.4fs | reduce wall "
          "%.4fs\n",
          result.detect_stats.threads_used,
          result.detect_stats.map_wall_seconds +
              result.verify_stats.map_wall_seconds,
          result.detect_stats.reduce_wall_seconds +
              result.verify_stats.reduce_wall_seconds);

  // Cost-model accuracy: the planner's predicted per-partition workload
  // against the distance evaluations detection actually performed.
  {
    std::vector<double> ratios;
    for (const PartitionProfile& profile :
         result.detect_stats.partition_profiles) {
      if (profile.predicted_cost > 0.0 &&
          profile.measured_distance_evals > 0) {
        ratios.push_back(profile.predicted_cost /
                         static_cast<double>(profile.measured_distance_evals));
      }
    }
    if (!ratios.empty()) {
      std::sort(ratios.begin(), ratios.end());
      const auto quantile = [&ratios](double q) {
        const size_t index = std::min(
            ratios.size() - 1, static_cast<size_t>(q * ratios.size()));
        return ratios[index];
      };
      Appendf(out,
              "cost model    : %zu partitions profiled | predicted/measured "
              "evals: median %.2fx (p10 %.2fx, p90 %.2fx)\n",
              result.detect_stats.partition_profiles.size(), quantile(0.5),
              quantile(0.1), quantile(0.9));
    }
  }

  Appendf(out, "data movement : %llu records shuffled (%.2f MB)\n",
          static_cast<unsigned long long>(
              result.detect_stats.records_shuffled +
              result.verify_stats.records_shuffled),
          (result.detect_stats.bytes_shuffled +
           result.verify_stats.bytes_shuffled) /
              1e6);

  // Fault-tolerance accounting, shown only when something actually failed,
  // straggled, or was blacklisted.
  const JobStats& d = result.detect_stats;
  const JobStats& v = result.verify_stats;
  const uint64_t failures = d.task_failures + v.task_failures;
  const uint64_t speculative = d.speculative_attempts + v.speculative_attempts;
  const uint64_t blacklisted = d.nodes_blacklisted + v.nodes_blacklisted;
  if (failures > 0 || speculative > 0 || blacklisted > 0) {
    Appendf(out,
            "fault recovery: %llu attempts (%llu failed, %llu retried, "
            "%llu speculative of which %llu won, %llu nodes blacklisted, "
            "%.2fs backoff)\n",
            static_cast<unsigned long long>(d.task_attempts +
                                            v.task_attempts),
            static_cast<unsigned long long>(failures),
            static_cast<unsigned long long>(d.task_retries + v.task_retries),
            static_cast<unsigned long long>(speculative),
            static_cast<unsigned long long>(d.speculative_wins +
                                            v.speculative_wins),
            static_cast<unsigned long long>(blacklisted),
            d.backoff_seconds + v.backoff_seconds);
  }
  return out;
}

}  // namespace dod
