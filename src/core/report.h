// Copyright 2026 The DOD Authors.
//
// Human-readable run reports for DodResult — the summary blocks the CLI
// and examples print.

#ifndef DOD_CORE_REPORT_H_
#define DOD_CORE_REPORT_H_

#include <string>

#include "core/config.h"
#include "core/pipeline.h"

namespace dod {

// Multi-line summary: configuration, outliers, plan composition, stage
// breakdown, and headline counters.
std::string FormatRunReport(const DodConfig& config, const DodResult& result,
                            size_t input_points);

// One-line form: "DMT: 42 outliers / 30000 pts, 0.0123s (64 partitions)".
std::string FormatRunSummary(const DodConfig& config, const DodResult& result,
                             size_t input_points);

}  // namespace dod

#endif  // DOD_CORE_REPORT_H_
