// Copyright 2026 The DOD Authors.
//
// Detection-quality evaluation helpers: compare a reported outlier set
// against ground truth (another detector's output or injected anomalies).
// Used by examples and tests; the DOD pipeline itself is exact, so these
// mostly serve application-level questions ("did we catch the injected
// attacks?") and parameter studies.

#ifndef DOD_CORE_EVALUATION_H_
#define DOD_CORE_EVALUATION_H_

#include <vector>

#include "common/point.h"

namespace dod {

struct DetectionQuality {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;

  // 1.0 when nothing was reported and nothing was expected.
  double precision() const;
  double recall() const;
  double f1() const;

  bool exact() const { return false_positives == 0 && false_negatives == 0; }
};

// Both inputs are sets of point ids; they need not be sorted.
DetectionQuality CompareOutlierSets(const std::vector<PointId>& reported,
                                    const std::vector<PointId>& expected);

}  // namespace dod

#endif  // DOD_CORE_EVALUATION_H_
