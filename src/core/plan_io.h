// Copyright 2026 The DOD Authors.
//
// Multi-tactic plan serialization. The preprocessing job's outputs — the
// partition plan to the mappers, the algorithm plan to the reducers, the
// allocation plan to the partitioner (Fig. 6) — are handed between jobs as
// small artifacts. This module writes/reads them as a line-oriented text
// format so plans can be inspected, diffed, archived, and replayed.
//
// Format (one token stream, '#'-comments allowed):
//   dod-plan v1
//   dims <d> radius <r> support <0|1>
//   domain <lo...> <hi...>
//   cells <m>
//   <m> x: cell <lo...> <hi...> alg <nested_loop|cell_based|brute_force>
//           reducer <r> cost <c>

#ifndef DOD_CORE_PLAN_IO_H_
#define DOD_CORE_PLAN_IO_H_

#include <string>

#include "common/status.h"
#include "core/plan.h"

namespace dod {

// Human-readable serialization of the full plan.
std::string SerializePlan(const MultiTacticPlan& plan);

// Parses a plan produced by SerializePlan. Validates structure (Def. 3.1)
// before returning.
Result<MultiTacticPlan> DeserializePlan(const std::string& text);

// File convenience wrappers.
Status WritePlanFile(const MultiTacticPlan& plan, const std::string& path);
Result<MultiTacticPlan> ReadPlanFile(const std::string& path);

}  // namespace dod

#endif  // DOD_CORE_PLAN_IO_H_
