// Copyright 2026 The DOD Authors.

#include "core/config.h"

namespace dod {

const char* StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kDomain:
      return "Domain";
    case StrategyKind::kUniSpace:
      return "uniSpace";
    case StrategyKind::kDDriven:
      return "DDriven";
    case StrategyKind::kCDriven:
      return "CDriven";
    case StrategyKind::kDmt:
      return "DMT";
  }
  return "Unknown";
}

DodConfig DodConfig::Dmt(DetectionParams params) {
  DodConfig config;
  config.params = params;
  config.strategy = StrategyKind::kDmt;
  return config;
}

DodConfig DodConfig::Baseline(DetectionParams params, StrategyKind strategy,
                              AlgorithmKind algorithm) {
  DodConfig config;
  config.params = params;
  config.strategy = strategy;
  config.fixed_algorithm = algorithm;
  return config;
}

std::string DodConfig::Label() const {
  if (strategy == StrategyKind::kDmt) return "DMT";
  return std::string(StrategyKindName(strategy)) + " + " +
         AlgorithmKindName(fixed_algorithm);
}

}  // namespace dod
