// Copyright 2026 The DOD Authors.

#include "core/plan_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dod {
namespace {

const char* AlgorithmToken(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kNestedLoop:
      return "nested_loop";
    case AlgorithmKind::kCellBased:
      return "cell_based";
    case AlgorithmKind::kBruteForce:
      return "brute_force";
  }
  return "unknown";
}

bool ParseAlgorithmToken(const std::string& token, AlgorithmKind* out) {
  if (token == "nested_loop") {
    *out = AlgorithmKind::kNestedLoop;
  } else if (token == "cell_based") {
    *out = AlgorithmKind::kCellBased;
  } else if (token == "brute_force") {
    *out = AlgorithmKind::kBruteForce;
  } else {
    return false;
  }
  return true;
}

void AppendCoords(std::string& out, const Point& p) {
  char buf[48];
  for (int d = 0; d < p.dims(); ++d) {
    std::snprintf(buf, sizeof(buf), " %.17g", p[d]);
    out += buf;
  }
}

// Token reader that skips '#' comments to end of line.
class TokenReader {
 public:
  explicit TokenReader(const std::string& text) : in_(text) {}

  bool Next(std::string* token) {
    while (in_ >> *token) {
      if (!token->empty() && (*token)[0] == '#') {
        std::string rest;
        std::getline(in_, rest);
        continue;
      }
      return true;
    }
    return false;
  }

  bool NextDouble(double* value) {
    std::string token;
    if (!Next(&token)) return false;
    char* end = nullptr;
    *value = std::strtod(token.c_str(), &end);
    return end != token.c_str() && *end == '\0';
  }

  bool NextInt(long long* value) {
    double d;
    if (!NextDouble(&d)) return false;
    *value = static_cast<long long>(d);
    return true;
  }

  // Reads a literal keyword; false on mismatch or EOF.
  bool Expect(const std::string& keyword) {
    std::string token;
    return Next(&token) && token == keyword;
  }

 private:
  std::istringstream in_;
};

Status ParseError(const std::string& what) {
  return Status::InvalidArgument("plan parse error: " + what);
}

}  // namespace

std::string SerializePlan(const MultiTacticPlan& plan) {
  const PartitionPlan& partition = plan.partition_plan;
  std::string out = "dod-plan v1\n";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "dims %d radius %.17g support %d\n",
                partition.dims(), partition.radius(),
                plan.uses_supporting_area ? 1 : 0);
  out += buf;
  out += "domain";
  AppendCoords(out, partition.domain().min());
  AppendCoords(out, partition.domain().max());
  out += "\n";
  std::snprintf(buf, sizeof(buf), "cells %zu\n", partition.num_cells());
  out += buf;
  for (size_t i = 0; i < partition.num_cells(); ++i) {
    const GridCell& cell = partition.cell(static_cast<uint32_t>(i));
    out += "cell";
    AppendCoords(out, cell.bounds.min());
    AppendCoords(out, cell.bounds.max());
    out += " alg ";
    out += AlgorithmToken(plan.algorithm_plan[i]);
    std::snprintf(buf, sizeof(buf), " reducer %d cost %.17g\n",
                  plan.allocation[i], plan.estimated_cost[i]);
    out += buf;
  }
  return out;
}

Result<MultiTacticPlan> DeserializePlan(const std::string& text) {
  TokenReader reader(text);
  if (!reader.Expect("dod-plan") || !reader.Expect("v1")) {
    return ParseError("bad header");
  }
  long long dims = 0;
  double radius = 0.0;
  long long support = 1;
  if (!reader.Expect("dims") || !reader.NextInt(&dims) ||
      !reader.Expect("radius") || !reader.NextDouble(&radius) ||
      !reader.Expect("support") || !reader.NextInt(&support)) {
    return ParseError("bad dims/radius/support");
  }
  if (dims < 1 || dims > kMaxDimensions) return ParseError("bad dims value");
  if (radius <= 0.0) return ParseError("bad radius value");

  auto read_point = [&](Point* p) {
    *p = Point(static_cast<int>(dims));
    for (int d = 0; d < dims; ++d) {
      if (!reader.NextDouble(&(*p)[d])) return false;
    }
    return true;
  };

  if (!reader.Expect("domain")) return ParseError("missing domain");
  Point dlo(static_cast<int>(dims)), dhi(static_cast<int>(dims));
  if (!read_point(&dlo) || !read_point(&dhi)) {
    return ParseError("bad domain coords");
  }
  for (int d = 0; d < dims; ++d) {
    if (dlo[d] > dhi[d]) return ParseError("inverted domain");
  }

  long long num_cells = 0;
  if (!reader.Expect("cells") || !reader.NextInt(&num_cells) ||
      num_cells < 1) {
    return ParseError("bad cell count");
  }

  std::vector<Rect> bounds;
  std::vector<AlgorithmKind> algorithms;
  std::vector<int> allocation;
  std::vector<double> costs;
  for (long long i = 0; i < num_cells; ++i) {
    if (!reader.Expect("cell")) return ParseError("missing cell");
    Point lo(static_cast<int>(dims)), hi(static_cast<int>(dims));
    if (!read_point(&lo) || !read_point(&hi)) {
      return ParseError("bad cell coords");
    }
    for (int d = 0; d < dims; ++d) {
      if (lo[d] > hi[d]) return ParseError("inverted cell");
    }
    bounds.push_back(Rect(lo, hi));
    std::string token;
    AlgorithmKind algorithm;
    if (!reader.Expect("alg") || !reader.Next(&token) ||
        !ParseAlgorithmToken(token, &algorithm)) {
      return ParseError("bad algorithm");
    }
    algorithms.push_back(algorithm);
    long long reducer = 0;
    double cost = 0.0;
    if (!reader.Expect("reducer") || !reader.NextInt(&reducer) ||
        !reader.Expect("cost") || !reader.NextDouble(&cost) || reducer < 0) {
      return ParseError("bad reducer/cost");
    }
    allocation.push_back(static_cast<int>(reducer));
    costs.push_back(cost);
  }

  MultiTacticPlan plan;
  plan.partition_plan =
      PartitionPlan(Rect(dlo, dhi), radius, std::move(bounds));
  plan.algorithm_plan = std::move(algorithms);
  plan.allocation = std::move(allocation);
  plan.estimated_cost = std::move(costs);
  plan.uses_supporting_area = support != 0;

  const Status valid = plan.partition_plan.Validate();
  if (!valid.ok()) {
    return Status::InvalidArgument("deserialized plan invalid: " +
                                   valid.ToString());
  }
  return plan;
}

Status WritePlanFile(const MultiTacticPlan& plan, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << SerializePlan(plan);
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<MultiTacticPlan> ReadPlanFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializePlan(buffer.str());
}

}  // namespace dod
