// Copyright 2026 The DOD Authors.
//
// Top-level configuration of the DOD pipeline: outlier parameters, the
// partitioning strategy and detector choice, cluster shape, and planner
// knobs. DodConfig::Dmt() / Baseline() build the configurations evaluated
// in the paper.

#ifndef DOD_CORE_CONFIG_H_
#define DOD_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "alloc/bin_packing.h"
#include "detection/cost_model.h"
#include "dshc/dshc.h"
#include "durability/run_control.h"
#include "mapreduce/cluster.h"
#include "mapreduce/shuffle.h"
#include "mapreduce/task_runner.h"
#include "partition/sampler.h"

namespace dod {

// Which map-side partitioning strategy drives the plan (Sec. VI-A).
enum class StrategyKind {
  kDomain,    // no supporting area; needs a verification job
  kUniSpace,  // equi-width cells + supporting areas
  kDDriven,   // cardinality-balanced cells
  kCDriven,   // cost-balanced cells (under the fixed detector's cost model)
  kDmt,       // density-aware multi-tactic (DSHC + per-partition algorithm)
};

const char* StrategyKindName(StrategyKind kind);

struct DodConfig {
  DetectionParams params;

  StrategyKind strategy = StrategyKind::kDmt;
  // Detector applied to every partition by the non-DMT strategies. DMT
  // selects per partition via Corollary 4.3 and ignores this field.
  AlgorithmKind fixed_algorithm = AlgorithmKind::kCellBased;

  // Requested number of partitions m (plans may produce a different count,
  // e.g. DMT emits one partition per DSHC cluster). 0 (the default) derives
  // m from the estimated cardinality: ~4000 points per partition, clamped
  // to [16, 512] — large enough for the detector classes to differ, small
  // enough to balance across reducers.
  size_t target_partitions = 0;
  // Number of reduce tasks R.
  int num_reduce_tasks = 32;
  // Number of input blocks / map tasks.
  size_t num_blocks = 32;
  // Worker threads that actually execute map/reduce tasks (the parallel
  // runtime, src/runtime/): <= 0 uses every hardware thread, 1 runs the
  // engine's sequential path. Output is byte-identical either way.
  int num_threads = 0;

  SamplerOptions sampler;
  DshcOptions dshc;
  // LPT by default: Karmarkar–Karp balances the *estimates* more tightly,
  // but with imperfect cost estimates LPT's greedy slack realizes better
  // makespans (see bench/abl_allocation).
  PackingPolicy packing = PackingPolicy::kLpt;
  ClusterSpec cluster;

  // Fault injection (off by default) and the task attempt policy, applied
  // to the detection and verification MapReduce jobs.
  FaultSpec faults;
  RetryPolicy retry;

  // Reduce-side grouping of the shuffled records. Both modes produce
  // byte-identical results; kSorted is the escape hatch for the columnar
  // counting-sort path (see mapreduce/shuffle.h).
  ShuffleMode shuffle = ShuffleMode::kColumnar;

  // Incremental neighbor-count summaries in the streaming service
  // (src/streaming/); consumed by dod_stream_cli when building its
  // StreamingConfig, ignored by the batch pipeline. Deltas are
  // byte-identical either way; off falls back to dirty-cell re-detection,
  // mirroring the --kernels/--shuffle escape-hatch convention.
  bool summaries = true;

  uint64_t seed = 42;

  // ---- Durable execution (src/durability/) ------------------------------
  //
  // When `checkpoint_dir` is set, the detection and verification jobs write
  // a per-task checkpoint after every commit under
  // `<checkpoint_dir>/detect` and `<checkpoint_dir>/verify`; with `resume`
  // a rerun of the same configuration skips the committed tasks and
  // produces byte-identical output. Empty = no checkpointing.
  std::string checkpoint_dir;
  bool resume = false;
  // Wall-clock budget for the whole run, measured from DodPipeline::Run
  // entry; <= 0 disables. Exceeding it aborts between tasks / cells with
  // kDeadlineExceeded and partial-progress stats.
  double deadline_seconds = 0.0;
  // Memory ceiling for arena and shuffle-scratch allocations; 0 = no
  // limit. The columnar shuffle degrades to the sorted path when its
  // scratch alone would not fit (result-identical, counter-visible), and
  // arena reservations that exceed the budget fail the run with
  // kResourceExhausted.
  uint64_t memory_budget_mb = 0;
  // Spill-to-disk shuffle (see mapreduce/spill.h). When `spill_dir` is
  // set, map tasks whose emitted bytes cross the threshold flush their
  // buckets as sorted runs there, and reduce grouping merges the runs back
  // — output stays byte-identical to the all-in-memory shuffle. Empty =
  // never spill. `spill_threshold_mb` 0 derives the threshold from the
  // memory budget (limit / 4) or 64 MiB without one.
  std::string spill_dir;
  uint64_t spill_threshold_mb = 0;
  // Cooperative cancellation; callers keep a copy and Cancel() from any
  // thread. A default-constructed token never fires.
  CancellationToken cancel_token;

  // The full multi-tactic configuration (DMT partitioning + per-partition
  // algorithm + cost-based allocation).
  static DodConfig Dmt(DetectionParams params);

  // A baseline: fixed `strategy` + one detector for all partitions.
  static DodConfig Baseline(DetectionParams params, StrategyKind strategy,
                            AlgorithmKind algorithm);

  // Human-readable configuration label, e.g. "CDriven + Nested-Loop".
  std::string Label() const;
};

}  // namespace dod

#endif  // DOD_CORE_CONFIG_H_
