// Copyright 2026 The DOD Authors.
//
// The end-to-end DOD pipeline (Fig. 6):
//
//   Job 1 (preprocessing, on a sample): distribution estimation via mini
//   buckets, then plan generation — partition plan, algorithm plan,
//   allocation plan.
//
//   Job 2 (detection, on the full data): mappers route every point to its
//   core cell and to every cell whose supporting area contains it (Fig. 3);
//   the partitioner applies the allocation plan; each reduce task runs the
//   assigned centralized detector per cell and reports outliers among core
//   points.
//
//   Job 3 (verification, Domain baseline only): without supporting areas,
//   locally-detected outliers near cell borders are only candidates; a
//   second pass ships border points to the candidate cells and finalizes
//   the verdicts.
//
// Returns exact distance-threshold outliers plus the per-stage time
// breakdown the paper's Fig. 10 reports.

#ifndef DOD_CORE_PIPELINE_H_
#define DOD_CORE_PIPELINE_H_

#include <vector>

#include "core/config.h"
#include "core/plan.h"
#include "io/block_store.h"
#include "mapreduce/job.h"

namespace dod {

struct StageBreakdown {
  // Sampling (parallel map) + plan generation (single reducer).
  double preprocess_seconds = 0.0;
  // Main detection job stages.
  StageTimes detect;
  // Verification job stages; all zero except for the Domain baseline.
  StageTimes verify;

  // Simulated end-to-end execution time.
  double total() const {
    return preprocess_seconds + detect.total() + verify.total();
  }
};

struct DodResult {
  // Global ids (into the input dataset) of all outliers, ascending.
  std::vector<PointId> outliers;
  StageBreakdown breakdown;
  JobStats detect_stats;
  JobStats verify_stats;
  MultiTacticPlan plan;
  // Real single-machine wall time of the whole run.
  double wall_seconds = 0.0;
};

// Out-parameter of Run() that survives failure. A run aborted by a
// deadline, cancellation, or an exhausted memory budget returns only a
// Status; the per-job stats accumulated up to the abort point land here so
// callers can report partial progress. On success it mirrors the stats in
// DodResult.
struct RunDiagnostics {
  JobStats detect_stats;
  JobStats verify_stats;
};

class DodPipeline {
 public:
  explicit DodPipeline(DodConfig config) : config_(std::move(config)) {}

  const DodConfig& config() const { return config_; }

  // Runs the full pipeline on `data`. Returns InvalidArgument on an empty
  // dataset, and propagates the structured error of any MapReduce task
  // that exhausted its retry budget (config().retry / config().faults);
  // the process never aborts on task failure.
  //
  // Durable execution (config().checkpoint_dir / resume / deadline_seconds
  // / memory_budget_mb / cancel_token, see config.h) applies to the
  // detection and verification jobs; a resumed run skips the tasks whose
  // checkpoints committed and produces byte-identical output. A run
  // stopped by deadline, cancellation, or memory budget returns
  // kDeadlineExceeded / kCancelled / kResourceExhausted; pass
  // `diagnostics` to receive the partial-progress stats of such a run.
  Result<DodResult> Run(const Dataset& data) const;
  Result<DodResult> Run(const Dataset& data, RunDiagnostics* diagnostics) const;

  // Convenience for callers that treat failure as fatal (tests, benches):
  // Run() with a CHECK on the status.
  DodResult RunOrDie(const Dataset& data) const {
    return Run(data).ValueOrDie();
  }

 private:
  DodConfig config_;
};

// Convenience for examples/tests: run one centralized detector over the
// whole dataset (no distribution).
std::vector<PointId> DetectOutliersCentralized(const Dataset& data,
                                               AlgorithmKind algorithm,
                                               const DetectionParams& params);

}  // namespace dod

#endif  // DOD_CORE_PIPELINE_H_
