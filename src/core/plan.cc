// Copyright 2026 The DOD Authors.

#include "core/plan.h"

#include <utility>

#include <algorithm>

#include "partition/strategies.h"

namespace dod {

namespace {

// Resolves DodConfig::target_partitions == 0 to the cardinality-derived
// default (see config.h).
size_t ResolveTargetPartitions(const DistributionSketch& sketch,
                               const DodConfig& config) {
  if (config.target_partitions > 0) return config.target_partitions;
  const double cardinality = sketch.EstimatedCardinality();
  return std::clamp<size_t>(static_cast<size_t>(cardinality / 4000.0),
                            size_t{16}, size_t{512});
}

}  // namespace

std::vector<double> MultiTacticPlan::ReducerLoads(int num_reduce_tasks) const {
  std::vector<double> loads(static_cast<size_t>(num_reduce_tasks), 0.0);
  for (size_t i = 0; i < allocation.size(); ++i) {
    loads[static_cast<size_t>(allocation[i])] += estimated_cost[i];
  }
  return loads;
}

namespace {

// Plan for the fixed-algorithm baselines: strategy-specific cells, one
// detector everywhere, allocation policy matching the strategy's goal.
MultiTacticPlan BuildBaselinePlan(const DistributionSketch& sketch,
                                  const DodConfig& config) {
  PlanningContext ctx{config.params,
                      ResolveTargetPartitions(sketch, config)};

  std::unique_ptr<PartitioningStrategy> strategy;
  switch (config.strategy) {
    case StrategyKind::kDomain:
      strategy = std::make_unique<DomainPartitioner>();
      break;
    case StrategyKind::kUniSpace:
      strategy = std::make_unique<UniSpacePartitioner>();
      break;
    case StrategyKind::kDDriven:
      strategy = std::make_unique<DDrivenPartitioner>();
      break;
    case StrategyKind::kCDriven:
      strategy = std::make_unique<CDrivenPartitioner>(config.fixed_algorithm);
      break;
    case StrategyKind::kDmt:
      DOD_CHECK_MSG(false, "DMT handled separately");
      break;
  }

  MultiTacticPlan plan;
  plan.partition_plan = strategy->BuildPlan(sketch, ctx);
  plan.uses_supporting_area = strategy->uses_supporting_area();
  const size_t m = plan.partition_plan.num_cells();
  plan.algorithm_plan.assign(m, config.fixed_algorithm);

  // Per-cell cardinality and refined-cost aux in one pass over the
  // sketch's buckets (each bucket's center lands in exactly one cell).
  std::vector<double> cell_cardinality(m, 0.0);
  std::vector<double> cell_aux(m, 0.0);
  const PartitionRouter router(plan.partition_plan);
  const double scale = sketch.Scale();
  const int dims = sketch.grid.dims();
  for (const MiniBucketGrid::Bucket& bucket : sketch.grid.buckets()) {
    const Rect rect = sketch.grid.BucketRect(bucket.coord);
    const Point center = rect.Center();
    const uint32_t cell = router.RouteCore(center.data());
    const double cardinality = bucket.weight * scale;
    const double density =
        rect.Area() > 0.0 ? cardinality / rect.Area() : 0.0;
    cell_cardinality[cell] += cardinality;
    cell_aux[cell] += RefinedBucketAux(config.fixed_algorithm, cardinality,
                                       density, config.params, dims);
  }
  plan.estimated_cost.resize(m);
  for (size_t i = 0; i < m; ++i) {
    plan.estimated_cost[i] =
        RefinedRegionCost(config.fixed_algorithm, cell_cardinality[i],
                          cell_aux[i], config.params);
  }

  // Domain/uniSpace/DDriven use Hadoop's positional striping; only the
  // cost-driven strategy allocates by estimated workload.
  const PackingPolicy policy = config.strategy == StrategyKind::kCDriven
                                   ? config.packing
                                   : PackingPolicy::kRoundRobin;
  plan.allocation =
      PackBins(plan.estimated_cost, config.num_reduce_tasks, policy).bin_of;
  return plan;
}

// The density-aware multi-tactic plan: DSHC clusters become partitions,
// each gets the Corollary 4.3 algorithm, and partitions are packed onto
// reducers by estimated cost.
MultiTacticPlan BuildDmtPlan(const DistributionSketch& sketch,
                             const DodConfig& config) {
  DshcOptions dshc = config.dshc;
  dshc.target_partitions = ResolveTargetPartitions(sketch, config);
  dshc.detection = config.params;
  std::vector<AggregateFeature> clusters = ClusterMiniBuckets(sketch, dshc);

  std::vector<Rect> cells;
  cells.reserve(clusters.size());
  for (const AggregateFeature& af : clusters) cells.push_back(af.bounds);

  MultiTacticPlan plan;
  plan.partition_plan = PartitionPlan(sketch.grid.domain(),
                                      config.params.radius, std::move(cells));
  plan.uses_supporting_area = true;

  const size_t m = clusters.size();
  plan.algorithm_plan.resize(m);
  plan.estimated_cost.resize(m);
  for (size_t i = 0; i < m; ++i) {
    PartitionStats stats;
    stats.dims = sketch.grid.dims();
    stats.area = clusters[i].bounds.Area();
    stats.cardinality = static_cast<size_t>(clusters[i].num_points + 0.5);
    plan.algorithm_plan[i] = SelectAlgorithm(stats, config.params);
    plan.estimated_cost[i] =
        PlanningCost(plan.algorithm_plan[i], stats, config.params);
  }

  plan.allocation =
      PackBins(plan.estimated_cost, config.num_reduce_tasks, config.packing)
          .bin_of;
  return plan;
}

}  // namespace

MultiTacticPlan BuildMultiTacticPlan(const DistributionSketch& sketch,
                                     const DodConfig& config) {
  if (config.strategy == StrategyKind::kDmt) {
    return BuildDmtPlan(sketch, config);
  }
  return BuildBaselinePlan(sketch, config);
}

}  // namespace dod
