// Copyright 2026 The DOD Authors.

#include "alloc/bin_packing.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <set>

#include "common/stats.h"
#include "common/status.h"

namespace dod {
namespace {

PackingResult PackRoundRobin(const std::vector<double>& weights,
                             int num_bins) {
  PackingResult result;
  result.bin_of.resize(weights.size());
  result.bin_loads.assign(static_cast<size_t>(num_bins), 0.0);
  for (size_t i = 0; i < weights.size(); ++i) {
    const int bin = static_cast<int>(i % static_cast<size_t>(num_bins));
    result.bin_of[i] = bin;
    result.bin_loads[static_cast<size_t>(bin)] += weights[i];
  }
  return result;
}

PackingResult PackLpt(const std::vector<double>& weights, int num_bins) {
  PackingResult result;
  result.bin_of.resize(weights.size());
  result.bin_loads.assign(static_cast<size_t>(num_bins), 0.0);

  std::vector<size_t> order(weights.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return weights[a] > weights[b];
  });

  using Bin = std::pair<double, int>;  // (load, bin index)
  std::priority_queue<Bin, std::vector<Bin>, std::greater<Bin>> heap;
  for (int b = 0; b < num_bins; ++b) heap.emplace(0.0, b);
  for (size_t i : order) {
    auto [load, bin] = heap.top();
    heap.pop();
    result.bin_of[i] = bin;
    result.bin_loads[static_cast<size_t>(bin)] = load + weights[i];
    heap.emplace(load + weights[i], bin);
  }
  return result;
}

// One partial solution of the k-way differencing method: k sub-bins with
// loads and member items, kept sorted by descending load.
struct KkTuple {
  std::vector<double> loads;               // size k, descending
  std::vector<std::vector<size_t>> items;  // parallel to loads

  double Spread() const { return loads.front() - loads.back(); }
};

PackingResult PackKarmarkarKarp(const std::vector<double>& weights,
                                int num_bins) {
  const size_t k = static_cast<size_t>(num_bins);
  PackingResult result;
  result.bin_of.resize(weights.size());
  result.bin_loads.assign(k, 0.0);
  if (weights.empty()) return result;

  // Max-heap of tuples by spread. Each item starts as its own tuple with
  // k-1 empty sub-bins.
  auto cmp = [](const KkTuple& a, const KkTuple& b) {
    return a.Spread() < b.Spread();
  };
  std::priority_queue<KkTuple, std::vector<KkTuple>, decltype(cmp)> heap(cmp);
  for (size_t i = 0; i < weights.size(); ++i) {
    KkTuple t;
    t.loads.assign(k, 0.0);
    t.items.assign(k, {});
    t.loads[0] = weights[i];
    t.items[0].push_back(i);
    heap.push(std::move(t));
  }

  // Repeatedly merge the two tuples of largest spread, pairing the largest
  // sub-bin of one with the smallest of the other (anti-sorted merge).
  while (heap.size() > 1) {
    KkTuple a = heap.top();
    heap.pop();
    KkTuple b = heap.top();
    heap.pop();
    KkTuple merged;
    merged.loads.resize(k);
    merged.items.resize(k);
    for (size_t j = 0; j < k; ++j) {
      merged.loads[j] = a.loads[j] + b.loads[k - 1 - j];
      merged.items[j] = std::move(a.items[j]);
      auto& other = b.items[k - 1 - j];
      merged.items[j].insert(merged.items[j].end(), other.begin(),
                             other.end());
    }
    // Re-sort sub-bins by descending load, keeping item lists aligned.
    std::vector<size_t> order(k);
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
      return merged.loads[x] > merged.loads[y];
    });
    KkTuple sorted;
    sorted.loads.resize(k);
    sorted.items.resize(k);
    for (size_t j = 0; j < k; ++j) {
      sorted.loads[j] = merged.loads[order[j]];
      sorted.items[j] = std::move(merged.items[order[j]]);
    }
    heap.push(std::move(sorted));
  }

  const KkTuple final_tuple = heap.top();
  for (size_t bin = 0; bin < k; ++bin) {
    result.bin_loads[bin] = final_tuple.loads[bin];
    for (size_t item : final_tuple.items[bin]) {
      result.bin_of[item] = static_cast<int>(bin);
    }
  }
  return result;
}

}  // namespace

const char* PackingPolicyName(PackingPolicy policy) {
  switch (policy) {
    case PackingPolicy::kRoundRobin:
      return "RoundRobin";
    case PackingPolicy::kLpt:
      return "LPT";
    case PackingPolicy::kKarmarkarKarp:
      return "KarmarkarKarp";
  }
  return "Unknown";
}

double PackingResult::Makespan() const { return Max(bin_loads); }

double PackingResult::Imbalance() const { return ImbalanceFactor(bin_loads); }

PackingResult PackBins(const std::vector<double>& weights, int num_bins,
                       PackingPolicy policy) {
  DOD_CHECK(num_bins >= 1);
  switch (policy) {
    case PackingPolicy::kRoundRobin:
      return PackRoundRobin(weights, num_bins);
    case PackingPolicy::kLpt:
      return PackLpt(weights, num_bins);
    case PackingPolicy::kKarmarkarKarp:
      return PackKarmarkarKarp(weights, num_bins);
  }
  return PackingResult{};
}

}  // namespace dod
