// Copyright 2026 The DOD Authors.
//
// Multi-bin packing for reducer allocation (Sec. V-A, step 3): divide a set
// of N partition costs into K subsets with sums as equal as possible. The
// problem is NP-complete; the paper adopts a polynomial-time approximation
// (Lemaire, Finke, Brauner 2006). We provide three policies:
//
//  * kRoundRobin — index-order striping; the no-information baseline that
//    Hadoop's default partitioner realizes.
//  * kLpt        — Longest Processing Time greedy (4/3-approximation).
//  * kKarmarkarKarp — k-way largest differencing; typically the best
//    polynomial heuristic and our default for DOD's allocation plan.

#ifndef DOD_ALLOC_BIN_PACKING_H_
#define DOD_ALLOC_BIN_PACKING_H_

#include <cstdint>
#include <vector>

namespace dod {

enum class PackingPolicy {
  kRoundRobin,
  kLpt,
  kKarmarkarKarp,
};

const char* PackingPolicyName(PackingPolicy policy);

struct PackingResult {
  // bin_of[i] = bin index of item i, in [0, num_bins).
  std::vector<int> bin_of;
  // Total weight per bin.
  std::vector<double> bin_loads;

  double Makespan() const;
  // max load / mean load; 1.0 is perfect balance.
  double Imbalance() const;
};

// Packs `weights` into `num_bins` bins under `policy`. `num_bins` must be
// >= 1; empty input yields empty bins.
PackingResult PackBins(const std::vector<double>& weights, int num_bins,
                       PackingPolicy policy);

}  // namespace dod

#endif  // DOD_ALLOC_BIN_PACKING_H_
