// Copyright 2026 The DOD Authors.
//
// CSV import/export for datasets. The OpenStreetMap/TIGER extracts the paper
// uses are row-per-record text files; this module lets users load their own
// extracts into a `dod::Dataset`.

#ifndef DOD_IO_CSV_H_
#define DOD_IO_CSV_H_

#include <string>

#include "common/dataset.h"
#include "common/status.h"

namespace dod {

struct CsvOptions {
  char delimiter = ',';
  // Skip this many leading rows (e.g. a header line).
  int skip_rows = 0;
  // If non-empty, read only these zero-based column indices, in order, as
  // the point coordinates (e.g. {2, 3} for longitude/latitude). When empty,
  // every column is a coordinate.
  std::vector<int> columns;
};

// Writes one point per row with `%.17g` precision (round-trip exact).
Status WriteCsv(const Dataset& dataset, const std::string& path,
                const CsvOptions& options = {});

// Reads a CSV file into a Dataset. Dimensionality is taken from
// `options.columns` when given, otherwise from the first data row. Rows with
// the wrong field count or unparsable numbers yield an error mentioning the
// line number.
Result<Dataset> ReadCsv(const std::string& path,
                        const CsvOptions& options = {});

}  // namespace dod

#endif  // DOD_IO_CSV_H_
