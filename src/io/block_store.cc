// Copyright 2026 The DOD Authors.

#include "io/block_store.h"

#include "common/random.h"
#include "common/status.h"

namespace dod {

BlockStore::BlockStore(const Dataset& dataset, size_t num_blocks,
                       uint64_t seed)
    : dataset_(&dataset) {
  DOD_CHECK(num_blocks >= 1);
  Rng rng(seed);
  std::vector<uint32_t> perm = RandomPermutation(dataset.size(), rng);
  blocks_.resize(num_blocks);
  const size_t per_block = (dataset.size() + num_blocks - 1) / num_blocks;
  for (auto& b : blocks_) b.reserve(per_block);
  for (size_t i = 0; i < perm.size(); ++i) {
    blocks_[i % num_blocks].push_back(perm[i]);
  }
}

}  // namespace dod
