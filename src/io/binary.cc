// Copyright 2026 The DOD Authors.

#include "io/binary.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace dod {
namespace {

constexpr char kMagic[8] = {'D', 'O', 'D', 'B', 'I', 'N', '1', '\0'};

}  // namespace

Status WriteBinary(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.write(kMagic, sizeof(kMagic));
  const uint32_t dims = static_cast<uint32_t>(dataset.dims());
  const uint64_t count = dataset.size();
  out.write(reinterpret_cast<const char*>(&dims), sizeof(dims));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(dataset.raw().data()),
            static_cast<std::streamsize>(dataset.raw().size() *
                                         sizeof(double)));
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<Dataset> ReadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);

  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a DODBIN1 file: " + path);
  }
  uint32_t dims = 0;
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&dims), sizeof(dims));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || dims < 1 || dims > static_cast<uint32_t>(kMaxDimensions)) {
    return Status::InvalidArgument("bad header in " + path);
  }

  Dataset dataset(static_cast<int>(dims));
  dataset.mutable_raw().resize(static_cast<size_t>(count) * dims);
  in.read(reinterpret_cast<char*>(dataset.mutable_raw().data()),
          static_cast<std::streamsize>(dataset.mutable_raw().size() *
                                       sizeof(double)));
  if (!in || in.gcount() !=
                 static_cast<std::streamsize>(dataset.mutable_raw().size() *
                                              sizeof(double))) {
    return Status::InvalidArgument("truncated payload in " + path);
  }
  // Trailing bytes indicate a corrupted or mismatched file.
  char extra;
  in.read(&extra, 1);
  if (!in.eof()) {
    return Status::InvalidArgument("trailing bytes in " + path);
  }
  // The payload is raw doubles; bit patterns for NaN/inf round-trip
  // perfectly through the format, so corruption (or a hostile writer) must
  // be caught by value, not by parse failure.
  DOD_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace dod
