// Copyright 2026 The DOD Authors.

#include "io/csv.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace dod {
namespace {

// Splits `line` on `delim`, trimming nothing (numeric fields tolerate
// leading whitespace via strtod).
std::vector<std::string> SplitFields(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, delim)) fields.push_back(field);
  // A trailing delimiter denotes one final empty field.
  if (!line.empty() && line.back() == delim) fields.emplace_back();
  return fields;
}

bool ParseDouble(const std::string& s, double* out) {
  const char* begin = s.c_str();
  char* end = nullptr;
  *out = std::strtod(begin, &end);
  if (end == begin) return false;
  while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
  return *end == '\0';
}

}  // namespace

Status WriteCsv(const Dataset& dataset, const std::string& path,
                const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  char buf[64];
  for (size_t i = 0; i < dataset.size(); ++i) {
    const double* p = dataset[static_cast<PointId>(i)];
    for (int d = 0; d < dataset.dims(); ++d) {
      std::snprintf(buf, sizeof(buf), "%.17g", p[d]);
      if (d > 0) out << options.delimiter;
      out << buf;
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<Dataset> ReadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);

  std::string line;
  int line_no = 0;
  for (int i = 0; i < options.skip_rows && std::getline(in, line); ++i) {
    ++line_no;
  }

  int dims = static_cast<int>(options.columns.size());
  Dataset dataset(dims > 0 ? dims : 1);
  bool dims_known = dims > 0;

  Point p(dims_known ? dims : 1);
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitFields(line, options.delimiter);
    if (!dims_known) {
      dims = static_cast<int>(fields.size());
      if (dims < 1 || dims > kMaxDimensions) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": unsupported dimensionality " +
                                       std::to_string(dims));
      }
      dataset = Dataset(dims);
      p = Point(dims);
      dims_known = true;
    }
    if (!options.columns.empty()) {
      for (int d = 0; d < dims; ++d) {
        const int col = options.columns[d];
        if (col < 0 || col >= static_cast<int>(fields.size())) {
          return Status::InvalidArgument("line " + std::to_string(line_no) +
                                         ": missing column " +
                                         std::to_string(col));
        }
        if (!ParseDouble(fields[col], &p[d])) {
          return Status::InvalidArgument("line " + std::to_string(line_no) +
                                         ": bad number '" + fields[col] + "'");
        }
      }
    } else {
      if (static_cast<int>(fields.size()) != dims) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": expected " +
            std::to_string(dims) + " fields, got " +
            std::to_string(fields.size()));
      }
      for (int d = 0; d < dims; ++d) {
        if (!ParseDouble(fields[d], &p[d])) {
          return Status::InvalidArgument("line " + std::to_string(line_no) +
                                         ": bad number '" + fields[d] + "'");
        }
      }
    }
    dataset.Append(p);
  }
  // strtod happily parses "nan" and "inf"; reject them here so a poisoned
  // CSV fails loudly instead of corrupting cell assignment downstream.
  DOD_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace dod
