// Copyright 2026 The DOD Authors.
//
// HDFS-like block layout. The paper's input contract is: "The input dataset,
// which resides in HDFS, has no prior partitioning properties, i.e., the data
// points are randomly distributed over the HDFS blocks" (Sec. III-B). A
// BlockStore reproduces that contract in-process: it assigns point ids of a
// Dataset to `num_blocks` blocks in random order; each block becomes one map
// task's input split.

#ifndef DOD_IO_BLOCK_STORE_H_
#define DOD_IO_BLOCK_STORE_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "common/point.h"

namespace dod {

class BlockStore {
 public:
  // Distributes the ids of `dataset` over `num_blocks` blocks using the
  // permutation generated from `seed`. The dataset must outlive the store.
  BlockStore(const Dataset& dataset, size_t num_blocks, uint64_t seed);

  const Dataset& dataset() const { return *dataset_; }
  size_t num_blocks() const { return blocks_.size(); }

  // Point ids stored in block `b`.
  const std::vector<PointId>& block(size_t b) const { return blocks_[b]; }

  // Approximate on-disk size of one record (used by shuffle accounting):
  // coordinates as fixed64 plus a small framing overhead.
  size_t BytesPerRecord() const {
    return sizeof(double) * dataset_->dims() + 8;
  }

  size_t TotalBytes() const { return dataset_->size() * BytesPerRecord(); }

 private:
  const Dataset* dataset_;
  std::vector<std::vector<PointId>> blocks_;
};

}  // namespace dod

#endif  // DOD_IO_BLOCK_STORE_H_
