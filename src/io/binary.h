// Copyright 2026 The DOD Authors.
//
// Binary dataset format — the fast path for large workloads (CSV parsing
// dominates load time beyond ~10^6 points). Layout:
//
//   bytes 0..7   magic "DODBIN1\0"
//   bytes 8..11  uint32 dims (little-endian)
//   bytes 12..19 uint64 point count
//   then         count × dims float64 coordinates, row-major
//
// The format is intentionally minimal: fixed layout, no compression, no
// endianness translation (files are machine-local artifacts, like the
// paper's HDFS blocks).

#ifndef DOD_IO_BINARY_H_
#define DOD_IO_BINARY_H_

#include <string>

#include "common/dataset.h"
#include "common/status.h"

namespace dod {

Status WriteBinary(const Dataset& dataset, const std::string& path);

// Validates the magic, dimensionality, and that the payload length matches
// the declared count.
Result<Dataset> ReadBinary(const std::string& path);

}  // namespace dod

#endif  // DOD_IO_BINARY_H_
