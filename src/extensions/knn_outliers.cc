// Copyright 2026 The DOD Authors.

#include "extensions/knn_outliers.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/distance.h"
#include "detection/grid.h"
#include "kernels/distance_kernels.h"
#include "kernels/soa_block.h"

namespace dod {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

// Candidate neighbors are gathered into a scratch SoA of this many slots
// and their distances computed batched; the heap consumes them in gather
// order, so its state matches the per-pair scan bit for bit.
constexpr size_t kGatherBatch = 8 * kSoaWidth;

// Running upper bound on a point's k-distance: max-heap of the k smallest
// distances seen so far.
class KSmallest {
 public:
  explicit KSmallest(int k) : k_(static_cast<size_t>(k)) {}

  void Add(double distance) {
    if (heap_.size() < k_) {
      heap_.push(distance);
    } else if (distance < heap_.top()) {
      heap_.pop();
      heap_.push(distance);
    }
  }

  bool full() const { return heap_.size() >= k_; }
  // +inf until k distances have been seen.
  double Bound() const { return full() ? heap_.top() : kInfinity; }

 private:
  size_t k_;
  std::priority_queue<double> heap_;
};

// k-distance of `id` against a prebuilt SoA copy of the whole dataset.
double KDistanceOverSoa(const SoABlock& all_points, const Dataset& data,
                        PointId id, int k, const KernelOps& ops,
                        std::vector<double>* sq_dist) {
  KSmallest smallest(k);
  sq_dist->resize(data.size());
  ops.squared_distances(all_points, data[id], sq_dist->data(), nullptr);
  for (PointId j = 0; j < data.size(); ++j) {
    if (j == id) continue;
    smallest.Add(std::sqrt((*sq_dist)[j]));
  }
  return smallest.Bound();
}

}  // namespace

double KDistance(const Dataset& data, PointId id, int k, KernelMode kernels) {
  DOD_CHECK(k >= 1);
  SoABlock all_points(data.dims());
  all_points.Assign(data);
  std::vector<double> sq_dist;
  return KDistanceOverSoa(all_points, data, id, k, GetKernelOps(kernels),
                          &sq_dist);
}

std::vector<KnnOutlier> TopNKnnOutliers(const Dataset& data,
                                        const KnnOutlierParams& params) {
  DOD_CHECK(params.k >= 1);
  std::vector<KnnOutlier> result;
  const size_t n = data.size();
  if (n == 0 || params.top_n == 0) return result;
  const int dims = data.dims();
  const KernelOps& ops = GetKernelOps(params.kernels);

  // Grid sized for ~2 points per cell; degenerate domains fall back to the
  // O(n²) scan.
  const Rect bounds = data.Bounds();
  double side = 0.0;
  if (bounds.Area() > 0.0) {
    side = std::pow(bounds.Area() * 2.0 / static_cast<double>(n),
                    1.0 / dims);
  }

  std::vector<KnnOutlier> scores;
  if (side <= 0.0) {
    SoABlock all_points(dims);
    all_points.Assign(data);
    std::vector<double> sq_dist;
    for (PointId i = 0; i < n; ++i) {
      scores.push_back(KnnOutlier{
          i, KDistanceOverSoa(all_points, data, i, params.k, ops, &sq_dist)});
    }
  } else {
    SparseGrid grid(bounds.min(), side);
    for (uint32_t i = 0; i < n; ++i) grid.Insert(data[i], i);
    const int max_ring = static_cast<int>(std::ceil(
        Chebyshev(bounds.min().data(), bounds.max().data(), dims) / side)) +
        1;

    // Min-heap of the current top-n scores; its minimum is the pruning
    // threshold θ: a point whose k-distance upper bound drops below θ can
    // never enter the top n.
    std::priority_queue<double, std::vector<double>, std::greater<double>>
        top_heap;
    SoABlock batch(dims);
    batch.Reserve(kGatherBatch);
    std::vector<double> batch_sq(kGatherBatch);
    for (uint32_t i = 0; i < n; ++i) {
      const double* p = data[i];
      const double theta = top_heap.size() >= params.top_n
                               ? top_heap.top()
                               : -kInfinity;
      KSmallest smallest(params.k);
      const CellCoord center = grid.CoordOf(p);
      bool pruned = false;
      double k_distance = kInfinity;
      const auto flush = [&] {
        if (batch.empty()) return;
        ops.squared_distances(batch, p, batch_sq.data(), nullptr);
        for (size_t s = 0; s < batch.size(); ++s) {
          smallest.Add(std::sqrt(batch_sq[s]));
        }
        batch.Clear();
      };
      for (int ring = 0; ring <= max_ring; ++ring) {
        grid.ForEachCellInBlock(center, ring, ring,
                                [&](const SparseGrid::Cell& cell) {
                                  for (uint32_t j : cell.points) {
                                    if (j == i) continue;
                                    batch.Append(data[j], j);
                                    if (batch.size() == kGatherBatch) {
                                      flush();
                                    }
                                  }
                                });
        // The bound checks need every distance of this ring settled.
        flush();
        const double bound = smallest.Bound();
        if (bound < theta) {
          pruned = true;  // certainly below the current top-n
          break;
        }
        // Points beyond ring t are at distance >= t*side; once the k-th
        // smallest found is within that, it is exact.
        if (smallest.full() && bound <= ring * side) {
          k_distance = bound;
          break;
        }
      }
      batch.Clear();  // drop leftovers of a pruned/early-exited scan
      if (pruned) continue;
      if (k_distance == kInfinity) k_distance = smallest.Bound();
      scores.push_back(KnnOutlier{i, k_distance});
      top_heap.push(k_distance);
      if (top_heap.size() > params.top_n) top_heap.pop();
    }
  }

  std::sort(scores.begin(), scores.end(),
            [](const KnnOutlier& a, const KnnOutlier& b) {
              if (a.k_distance != b.k_distance) {
                return a.k_distance > b.k_distance;
              }
              return a.id < b.id;
            });
  if (scores.size() > params.top_n) scores.resize(params.top_n);
  return scores;
}

}  // namespace dod
