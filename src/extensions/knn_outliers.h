// Copyright 2026 The DOD Authors.
//
// The kNN-based outlier semantics (Ramaswamy, Rastogi, Shim — SIGMOD 2000;
// reference [10] of the paper): the top-n outliers are the points with the
// largest distance to their k-th nearest neighbor. The paper's related-work
// section contrasts this definition with the distance-threshold semantics
// DOD targets; this module provides an exact centralized implementation so
// the two semantics can be compared on the same data.
//
// Note the structural difference the paper leans on: kNN outliers need a
// *global* top-n, so the DOD single-pass framework does not apply directly
// (a partition cannot bound its points' k-distances from local data alone
// when k-th neighbors lie beyond the supporting area). Distributed
// approaches to this semantics ([11], [13]) pay synchronization or
// broadcast costs instead.

#ifndef DOD_EXTENSIONS_KNN_OUTLIERS_H_
#define DOD_EXTENSIONS_KNN_OUTLIERS_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "kernels/kernel_mode.h"

namespace dod {

struct KnnOutlierParams {
  // Which nearest neighbor defines the outlier score (self excluded).
  int k = 5;
  // How many top-scoring points to report.
  size_t top_n = 10;
  // Distance-kernel implementation; scores are bit-identical in every mode.
  KernelMode kernels = KernelMode::kAuto;
};

struct KnnOutlier {
  PointId id = 0;
  // Distance to the k-th nearest neighbor.
  double k_distance = 0.0;
};

// Exact top-n kNN outliers, descending by k-distance (ties broken by
// ascending id, so results are deterministic). Points with fewer than k
// other points in the dataset score infinity.
//
// Implementation: a uniform grid with expanding ring search per point,
// plus the classic pruning — a point whose running k-distance upper bound
// falls below the current top-n threshold is abandoned early.
std::vector<KnnOutlier> TopNKnnOutliers(const Dataset& data,
                                        const KnnOutlierParams& params);

// Exact k-distance of one point (helper; O(n) scan).
double KDistance(const Dataset& data, PointId id, int k,
                 KernelMode kernels = KernelMode::kAuto);

}  // namespace dod

#endif  // DOD_EXTENSIONS_KNN_OUTLIERS_H_
