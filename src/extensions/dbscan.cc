// Copyright 2026 The DOD Authors.

#include "extensions/dbscan.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/union_find.h"
#include "detection/grid.h"
#include "kernels/distance_kernels.h"
#include "kernels/soa_block.h"
#include "partition/partition_plan.h"
#include "partition/strategies.h"

namespace dod {
namespace {

// Neighbor lists via a sparse grid with cell side eps: all neighbors of a
// point lie within the 3^d block around its cell. Each cell's members are
// mirrored into a blocked SoA buffer at build time, so a range query is one
// RangeMask kernel call per non-empty cell of the block; eps² is hoisted
// once.
class EpsIndex {
 public:
  EpsIndex(const Dataset& points, double eps, KernelMode kernels)
      : points_(points),
        sq_eps_(eps * eps),
        ops_(GetKernelOps(kernels)),
        grid_(points.Bounds().min(), eps) {
    for (uint32_t i = 0; i < points.size(); ++i) grid_.Insert(points_[i], i);
    cell_soa_.reserve(grid_.cells().size());
    for (const SparseGrid::Cell& cell : grid_.cells()) {
      SoABlock& soa = cell_soa_.emplace_back(points.dims());
      soa.Reserve(cell.points.size());
      for (uint32_t j : cell.points) soa.Append(points_[j], j);
    }
  }

  // Appends the ids within eps of point `i` (excluding `i`) to `out`, in
  // cell order then member order — the order the scalar scan produced.
  void Neighbors(uint32_t i, std::vector<uint32_t>* out) const {
    const double* p = points_[i];
    grid_.ForEachCellInBlock(
        grid_.CoordOf(p), 0, 1, [&](const SparseGrid::Cell& cell) {
          const size_t index =
              static_cast<size_t>(&cell - grid_.cells().data());
          ops_.range_mask(cell_soa_[index], p, sq_eps_, /*skip_id=*/i, out,
                          nullptr);
        });
  }

 private:
  const Dataset& points_;
  double sq_eps_;
  const KernelOps& ops_;
  SparseGrid grid_;
  std::vector<SoABlock> cell_soa_;
};

}  // namespace

std::vector<int32_t> DbscanLabels(const Dataset& data,
                                  const DbscanParams& params) {
  const size_t n = data.size();
  std::vector<int32_t> labels(n, kDbscanNoise);
  if (n == 0) return labels;
  DOD_CHECK(params.eps > 0.0);
  DOD_CHECK(params.min_pts >= 1);

  const EpsIndex index(data, params.eps, params.kernels);
  std::vector<std::vector<uint32_t>> neighbor_cache(n);
  std::vector<bool> is_core(n, false);
  for (uint32_t i = 0; i < n; ++i) {
    index.Neighbors(i, &neighbor_cache[i]);
    // min_pts counts the point itself.
    is_core[i] =
        neighbor_cache[i].size() + 1 >= static_cast<size_t>(params.min_pts);
  }

  int32_t next_cluster = 0;
  std::deque<uint32_t> frontier;
  for (uint32_t seed = 0; seed < n; ++seed) {
    if (!is_core[seed] || labels[seed] != kDbscanNoise) continue;
    const int32_t cluster = next_cluster++;
    labels[seed] = cluster;
    frontier.assign(1, seed);
    while (!frontier.empty()) {
      const uint32_t p = frontier.front();
      frontier.pop_front();
      for (uint32_t q : neighbor_cache[p]) {
        if (labels[q] != kDbscanNoise) continue;
        labels[q] = cluster;
        if (is_core[q]) frontier.push_back(q);
      }
    }
  }
  return labels;
}

DistributedDbscanResult DistributedDbscan(
    const Dataset& data, const DbscanParams& params,
    const DistributedDbscanOptions& options) {
  DistributedDbscanResult result;
  const size_t n = data.size();
  result.labels.assign(n, kDbscanNoise);
  if (n == 0) return result;
  DOD_CHECK(params.eps > 0.0);
  DOD_CHECK(params.min_pts >= 1);

  // Map side: equi-width cells with eps supporting areas (Def. 3.3), so
  // each partition sees every point within eps of its core points.
  const Rect domain = data.Bounds();
  const PartitionPlan plan(
      domain, params.eps,
      EquiWidthCells(domain, std::max<size_t>(1, options.target_partitions)));
  const PartitionRouter router(plan);
  const size_t m = plan.num_cells();
  std::vector<std::vector<PointId>> core(m), support(m);
  std::vector<uint32_t> cells;
  for (PointId i = 0; i < n; ++i) {
    core[router.RouteCore(data[i])].push_back(i);
    cells.clear();
    router.RouteSupport(data[i], &cells);
    for (uint32_t c : cells) support[c].push_back(i);
  }

  // Phase A (reduce side, pass 1): each home partition decides coreness of
  // its core points exactly — their full eps-ball is present.
  std::vector<bool> is_core(n, false);
  std::vector<std::vector<PointId>> members(m);
  for (size_t c = 0; c < m; ++c) {
    members[c] = core[c];
    members[c].insert(members[c].end(), support[c].begin(),
                      support[c].end());
    if (core[c].empty()) continue;
    Dataset part(data.dims());
    part.Reserve(members[c].size());
    for (PointId id : members[c]) part.Append(data[id]);
    const EpsIndex index(part, params.eps, params.kernels);
    std::vector<uint32_t> neighbors;
    for (size_t i = 0; i < core[c].size(); ++i) {
      neighbors.clear();
      index.Neighbors(static_cast<uint32_t>(i), &neighbors);
      if (neighbors.size() + 1 >= static_cast<size_t>(params.min_pts)) {
        is_core[core[c][i]] = true;
      }
    }
  }

  // Phase B (reduce side, pass 2): local clustering per partition —
  // BFS expansion only through globally core points. Local cluster ids are
  // globalized with a running counter; each point's final cluster comes
  // from its home partition, and support occurrences of core points yield
  // merge edges between local clusterings.
  std::vector<int32_t> home_label(n, kDbscanNoise);
  std::vector<std::pair<int32_t, int32_t>> edges;  // (home label, foreign)
  std::vector<std::pair<PointId, int32_t>> pending_foreign;
  int32_t next_label = 0;
  for (size_t c = 0; c < m; ++c) {
    if (members[c].empty()) continue;
    Dataset part(data.dims());
    part.Reserve(members[c].size());
    for (PointId id : members[c]) part.Append(data[id]);
    const EpsIndex index(part, params.eps, params.kernels);

    const size_t local_n = members[c].size();
    std::vector<int32_t> local(local_n, kDbscanNoise);
    std::deque<uint32_t> frontier;
    std::vector<uint32_t> neighbors;
    for (uint32_t seed = 0; seed < local_n; ++seed) {
      if (local[seed] != kDbscanNoise || !is_core[members[c][seed]]) continue;
      const int32_t cluster = next_label++;
      local[seed] = cluster;
      frontier.assign(1, seed);
      while (!frontier.empty()) {
        const uint32_t p = frontier.front();
        frontier.pop_front();
        neighbors.clear();
        index.Neighbors(p, &neighbors);
        for (uint32_t q : neighbors) {
          if (local[q] != kDbscanNoise) continue;
          local[q] = cluster;
          if (is_core[members[c][q]]) frontier.push_back(q);
        }
      }
    }

    // Home labels for core points of this partition; merge edges for
    // labeled support occurrences of globally-core points.
    for (uint32_t i = 0; i < local_n; ++i) {
      const PointId id = members[c][i];
      if (i < core[c].size()) {
        home_label[id] = local[i];
      } else if (local[i] != kDbscanNoise && is_core[id]) {
        pending_foreign.emplace_back(id, local[i]);
      }
    }
  }
  for (const auto& [id, foreign] : pending_foreign) {
    // A globally core point is always labeled at home.
    DOD_CHECK(home_label[id] != kDbscanNoise);
    edges.emplace_back(home_label[id], foreign);
  }

  // Merge: union the local clusterings, then compact final labels in order
  // of first appearance over ascending point ids (determinism).
  UnionFind forest(static_cast<size_t>(next_label));
  for (const auto& [a, b] : edges) {
    forest.Union(static_cast<size_t>(a), static_cast<size_t>(b));
  }
  result.merges = edges.size();
  std::unordered_map<size_t, int32_t> compact;
  for (PointId i = 0; i < n; ++i) {
    if (home_label[i] == kDbscanNoise) continue;
    const size_t root = forest.Find(static_cast<size_t>(home_label[i]));
    auto [it, inserted] =
        compact.try_emplace(root, static_cast<int32_t>(compact.size()));
    result.labels[i] = it->second;
  }
  result.num_clusters = static_cast<int32_t>(compact.size());
  return result;
}

}  // namespace dod
