// Copyright 2026 The DOD Authors.
//
// Density-based clustering (DBSCAN) on the DOD framework — the adaptation
// the paper calls out in Sec. III-B: "This can be easily adapted to support
// other mining tasks that can take advantage of the supporting area
// partitioning strategy, such as density-based clustering [16]".
//
// The supporting-area property gives each partition every point within eps
// of its core points, so each partition clusters locally in isolation; a
// final lightweight merge unions local cluster labels that share a
// (globally) core point, exactly as in MR-DBSCAN.

#ifndef DOD_EXTENSIONS_DBSCAN_H_
#define DOD_EXTENSIONS_DBSCAN_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "kernels/kernel_mode.h"

namespace dod {

struct DbscanParams {
  // Neighborhood radius (the ε of DBSCAN).
  double eps = 1.0;
  // Minimum neighborhood size (including the point itself) for a point to
  // be a core point.
  int min_pts = 5;
  // Distance-kernel implementation for the eps-range queries; labels are
  // identical in every mode.
  KernelMode kernels = KernelMode::kAuto;
};

// Label of points that belong to no cluster.
inline constexpr int32_t kDbscanNoise = -1;

// Reference centralized DBSCAN. Returns one label per point: kDbscanNoise
// or a cluster id in [0, num_clusters). Cluster ids are assigned in
// first-discovery order over ascending point ids, so results are
// deterministic. Border points equidistant to several clusters join the
// cluster discovered first (standard DBSCAN order dependence).
std::vector<int32_t> DbscanLabels(const Dataset& data,
                                  const DbscanParams& params);

struct DistributedDbscanOptions {
  // Partition granularity of the equi-width plan.
  size_t target_partitions = 64;
};

struct DistributedDbscanResult {
  std::vector<int32_t> labels;
  int32_t num_clusters = 0;
  // Cross-partition label merges performed (diagnostic).
  size_t merges = 0;
};

// DBSCAN over the single-pass DOD framework: equi-width cells + eps
// supporting areas, local DBSCAN per partition, then label unification.
// Guarantees: core points receive exactly the clusters of the centralized
// algorithm (up to label permutation); border points join one of their
// adjacent clusters; noise is identical.
DistributedDbscanResult DistributedDbscan(
    const Dataset& data, const DbscanParams& params,
    const DistributedDbscanOptions& options = {});

}  // namespace dod

#endif  // DOD_EXTENSIONS_DBSCAN_H_
