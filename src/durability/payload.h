// Copyright 2026 The DOD Authors.
//
// Binary payload codec for checkpoint records.
//
// Checkpoint payloads are flat little-endian byte streams written by
// PayloadWriter and read back by PayloadReader. The format is deliberately
// dumb — fixed-width scalars, length-prefixed strings and vectors, no
// self-description — because every payload is paired with a manifest entry
// carrying its byte length and checksum (durability/checkpoint.h), and the
// writer and reader are always the same binary on the same machine
// (machine-local artifacts, like io/binary.h's datasets).
//
// PayloadReader never trusts its input: every read is bounds-checked and
// returns a structured Status on truncation or length-prefix overflow, so
// a corrupted or version-skewed payload degrades into an error the caller
// can handle (typically: discard the record and re-run the task), never
// into undefined behavior. The checkpoint fuzz tests drive this contract.

#ifndef DOD_DURABILITY_PAYLOAD_H_
#define DOD_DURABILITY_PAYLOAD_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dod {

// FNV-1a 64-bit hash; the manifest's payload checksum.
uint64_t Fnv1a64(std::string_view bytes);

// Incremental FNV-1a for streamed payloads (e.g. spill-run readers that
// verify a checksum while consuming the run in fixed-size chunks):
// Fnv1a64(bytes) == Fnv1a64Update(Fnv1a64Seed(), bytes), and folding a
// byte stream chunk by chunk yields the same hash as one whole-view call.
inline constexpr uint64_t Fnv1a64Seed() { return 0xCBF29CE484222325ULL; }
uint64_t Fnv1a64Update(uint64_t hash, std::string_view bytes);

// Appends fixed-width scalars and length-prefixed containers to a byte
// buffer. Never fails; the result is taken with str().
class PayloadWriter {
 public:
  void U8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }

  void Raw(const void* bytes, size_t size) {
    if (size == 0) return;  // empty vectors hand out a null data()
    buffer_.append(static_cast<const char*>(bytes), size);
  }

  // Length-prefixed string (u32 length + bytes).
  void String(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }

  // Length-prefixed vector of doubles (u64 count + raw values).
  void F64Vec(const std::vector<double>& v) {
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(double));
  }

  size_t size() const { return buffer_.size(); }
  const std::string& str() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

// Bounds-checked sequential reader over a payload byte view. The view must
// outlive the reader. All reads advance the cursor; a failed read leaves
// the reader in an error state (subsequent reads keep failing).
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view bytes) : bytes_(bytes) {}

  Status U8(uint8_t* out) { return Fixed(out, sizeof(*out), "u8"); }
  Status U32(uint32_t* out) { return Fixed(out, sizeof(*out), "u32"); }
  Status U64(uint64_t* out) { return Fixed(out, sizeof(*out), "u64"); }
  Status F64(double* out) { return Fixed(out, sizeof(*out), "f64"); }

  Status Raw(void* out, size_t size);

  Status String(std::string* out);
  Status F64Vec(std::vector<double>* out);

  // Bytes left to read.
  size_t remaining() const { return bytes_.size() - cursor_; }

  // OK when the payload was consumed exactly; trailing bytes indicate a
  // writer/reader mismatch and fail like truncation does.
  Status ExpectDone() const;

 private:
  Status Fixed(void* out, size_t size, const char* what);

  std::string_view bytes_;
  size_t cursor_ = 0;
  bool failed_ = false;
};

}  // namespace dod

#endif  // DOD_DURABILITY_PAYLOAD_H_
