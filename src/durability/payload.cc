// Copyright 2026 The DOD Authors.

#include "durability/payload.h"

namespace dod {

uint64_t Fnv1a64Update(uint64_t hash, std::string_view bytes) {
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

uint64_t Fnv1a64(std::string_view bytes) {
  return Fnv1a64Update(Fnv1a64Seed(), bytes);
}

Status PayloadReader::Fixed(void* out, size_t size, const char* what) {
  if (failed_ || size > remaining()) {
    failed_ = true;
    return Status::IoError(std::string("payload truncated reading ") + what +
                           " at offset " + std::to_string(cursor_));
  }
  if (size > 0) std::memcpy(out, bytes_.data() + cursor_, size);
  cursor_ += size;
  return Status::Ok();
}

Status PayloadReader::Raw(void* out, size_t size) {
  return Fixed(out, size, "raw bytes");
}

Status PayloadReader::String(std::string* out) {
  uint32_t length = 0;
  DOD_RETURN_IF_ERROR(U32(&length));
  if (length > remaining()) {
    failed_ = true;
    return Status::IoError("payload truncated: string of " +
                           std::to_string(length) + " bytes at offset " +
                           std::to_string(cursor_) + " overruns payload");
  }
  out->assign(bytes_.data() + cursor_, length);
  cursor_ += length;
  return Status::Ok();
}

Status PayloadReader::F64Vec(std::vector<double>* out) {
  uint64_t count = 0;
  DOD_RETURN_IF_ERROR(U64(&count));
  if (count > remaining() / sizeof(double)) {
    failed_ = true;
    return Status::IoError("payload truncated: double vector of " +
                           std::to_string(count) + " entries overruns payload");
  }
  out->resize(static_cast<size_t>(count));
  return Raw(out->data(), static_cast<size_t>(count) * sizeof(double));
}

Status PayloadReader::ExpectDone() const {
  if (failed_) return Status::IoError("payload reader is in a failed state");
  if (remaining() != 0) {
    return Status::IoError("payload has " + std::to_string(remaining()) +
                           " trailing bytes");
  }
  return Status::Ok();
}

}  // namespace dod
