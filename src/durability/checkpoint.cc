// Copyright 2026 The DOD Authors.

#include "durability/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "durability/payload.h"
#include "observability/json.h"

namespace dod {
namespace {

namespace fs = std::filesystem;

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Writes `contents` to `path` atomically: temp file in the same directory,
// flush, rename over the target.
Status AtomicWriteFile(const fs::path& path, const std::string& contents) {
  fs::path temp = path;
  temp += ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open " + temp.string() +
                             " for writing: " + std::strerror(errno));
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      return Status::IoError("short write to " + temp.string());
    }
  }
  std::error_code ec;
  fs::rename(temp, path, ec);
  if (ec) {
    fs::remove(temp, ec);
    return Status::IoError("cannot rename " + temp.string() + " over " +
                           path.string() + ": " + ec.message());
  }
  return Status::Ok();
}

Result<std::string> ReadFileToString(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path.string() + ": " +
                            std::strerror(errno));
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read failure on " + path.string());
  }
  return contents.str();
}

// A manifest field that must be a non-negative integral number.
Result<uint64_t> GetU64Field(const JsonValue& obj, const std::string& key,
                             const char* where) {
  if (!obj.Has(key) || !obj.Get(key).is_number()) {
    return Status::InvalidArgument(std::string(where) + " is missing numeric " +
                                   key);
  }
  double v = obj.Get(key).number_value();
  if (v < 0.0 || v != v || v > 1.8e19) {
    return Status::InvalidArgument(std::string(where) + " has out-of-range " +
                                   key);
  }
  return static_cast<uint64_t>(v);
}

bool ValidPhaseName(const std::string& phase) {
  if (phase.empty() || phase.size() > 32) return false;
  for (char c : phase) {
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

// Validates one task-record object (a `tasks` entry or a journal line).
Result<CheckpointRecord> ParseRecordObject(const JsonValue& entry) {
  if (!entry.is_object()) {
    return Status::InvalidArgument("manifest task entry is not an object");
  }
  CheckpointRecord record;
  if (!entry.Has("phase") || !entry.Get("phase").is_string()) {
    return Status::InvalidArgument("manifest task entry is missing phase");
  }
  record.phase = entry.Get("phase").string_value();
  // Phase names are lowercase identifiers ("map", "reduce", "stream",
  // "latest", ...); the syntactic check keeps rejecting corrupted records
  // without a whitelist every new subsystem would have to extend.
  if (!ValidPhaseName(record.phase)) {
    return Status::InvalidArgument("manifest task entry has invalid phase " +
                                   record.phase);
  }
  DOD_ASSIGN_OR_RETURN(uint64_t index,
                       GetU64Field(entry, "index", "manifest task entry"));
  if (index > 1u << 30) {
    return Status::InvalidArgument("manifest task entry index too large");
  }
  record.index = static_cast<int>(index);
  if (!entry.Has("file") || !entry.Get("file").is_string()) {
    return Status::InvalidArgument("manifest task entry is missing file");
  }
  record.file = entry.Get("file").string_value();
  // Payload files live directly in the store directory; a path with
  // separators could escape it.
  if (record.file.empty() ||
      record.file.find_first_of("/\\") != std::string::npos) {
    return Status::InvalidArgument("manifest task entry has invalid file " +
                                   record.file);
  }
  DOD_ASSIGN_OR_RETURN(record.offset,
                       GetU64Field(entry, "offset", "manifest task entry"));
  DOD_ASSIGN_OR_RETURN(record.bytes,
                       GetU64Field(entry, "bytes", "manifest task entry"));
  // The checksum is a full 64-bit value; JSON numbers round-trip through
  // double (53-bit mantissa) in this parser, so it is stored as hex text.
  if (!entry.Has("checksum") || !entry.Get("checksum").is_string()) {
    return Status::InvalidArgument(
        "manifest task entry is missing string checksum");
  }
  const std::string& checksum_hex = entry.Get("checksum").string_value();
  char* end = nullptr;
  errno = 0;
  record.checksum = std::strtoull(checksum_hex.c_str(), &end, 16);
  if (checksum_hex.empty() ||
      end != checksum_hex.c_str() + checksum_hex.size() || errno == ERANGE) {
    return Status::InvalidArgument(
        "manifest task entry has malformed checksum " + checksum_hex);
  }
  return record;
}

// One journal line: {"phase": ..., "index": ..., "file": ...,
// "offset": ..., "bytes": ..., "checksum": ...}\n
std::string RecordLine(const CheckpointRecord& record) {
  char checksum_hex[17];
  std::snprintf(checksum_hex, sizeof(checksum_hex), "%016llx",
                static_cast<unsigned long long>(record.checksum));
  std::ostringstream out;
  out << "{\"phase\": \"" << record.phase
      << "\", \"index\": " << record.index << ", \"file\": \""
      << JsonEscape(record.file) << "\", \"offset\": " << record.offset
      << ", \"bytes\": " << record.bytes << ", \"checksum\": \""
      << checksum_hex << "\"}\n";
  return out.str();
}

}  // namespace

Result<CheckpointRecord> CheckpointStore::ParseRecordLine(
    std::string_view line) {
  DOD_ASSIGN_OR_RETURN(JsonValue entry, JsonValue::Parse(line));
  return ParseRecordObject(entry);
}

Result<CheckpointManifest> CheckpointStore::ParseManifest(
    std::string_view text, const std::string& expected_job_key) {
  DOD_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(text));
  if (!root.is_object()) {
    return Status::InvalidArgument("manifest root is not an object");
  }
  CheckpointManifest manifest;
  DOD_ASSIGN_OR_RETURN(uint64_t version,
                       GetU64Field(root, "format_version", "manifest"));
  if (version != static_cast<uint64_t>(kFormatVersion)) {
    return Status::FailedPrecondition(
        "manifest format_version " + std::to_string(version) +
        " is not the supported version " + std::to_string(kFormatVersion));
  }
  manifest.format_version = static_cast<int>(version);
  if (!root.Has("job_key") || !root.Get("job_key").is_string()) {
    return Status::InvalidArgument("manifest is missing string job_key");
  }
  manifest.job_key = root.Get("job_key").string_value();
  if (!expected_job_key.empty() && manifest.job_key != expected_job_key) {
    return Status::FailedPrecondition(
        "manifest belongs to job " + manifest.job_key +
        ", not the requested job " + expected_job_key +
        " — refusing to resume from another job's checkpoints");
  }
  if (!root.Has("tasks") || !root.Get("tasks").is_array()) {
    return Status::InvalidArgument("manifest is missing tasks array");
  }
  for (const JsonValue& entry : root.Get("tasks").array()) {
    DOD_ASSIGN_OR_RETURN(CheckpointRecord record, ParseRecordObject(entry));
    manifest.records.push_back(std::move(record));
  }
  return manifest;
}

Result<std::unique_ptr<CheckpointStore>> CheckpointStore::Open(
    const std::string& dir, const std::string& job_key, bool resume) {
  if (dir.empty()) {
    return Status::InvalidArgument("checkpoint directory must not be empty");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint directory " + dir + ": " +
                           ec.message());
  }
  std::unique_ptr<CheckpointStore> store(new CheckpointStore(dir, job_key));
  fs::path manifest_path = fs::path(dir) / "MANIFEST.json";

  if (resume && fs::exists(manifest_path)) {
    DOD_ASSIGN_OR_RETURN(std::string text, ReadFileToString(manifest_path));
    DOD_ASSIGN_OR_RETURN(CheckpointManifest manifest,
                         ParseManifest(text, job_key));
    for (CheckpointRecord& record : manifest.records) {
      std::pair<std::string, int> key(record.phase, record.index);
      store->records_[std::move(key)] = std::move(record);
    }
    // Replay the commit journal over the snapshot. Appends land whole or
    // torn-at-the-tail, so replay stops at the first line that is
    // unterminated or fails to parse — everything after it is suspect and
    // those tasks simply re-run.
    const fs::path journal_path = fs::path(dir) / "MANIFEST.log";
    if (fs::exists(journal_path)) {
      DOD_ASSIGN_OR_RETURN(std::string journal,
                           ReadFileToString(journal_path));
      size_t start = 0;
      while (start < journal.size()) {
        const size_t newline = journal.find('\n', start);
        if (newline == std::string::npos) break;  // torn final append
        const std::string_view line(journal.data() + start, newline - start);
        start = newline + 1;
        if (line.empty()) continue;
        Result<CheckpointRecord> record = ParseRecordLine(line);
        if (!record.ok()) break;
        std::pair<std::string, int> key(record.value().phase,
                                        record.value().index);
        store->records_[std::move(key)] = std::move(record).value();
      }
    }
    return store;
  }

  // Fresh run: drop any stale state so a later resume cannot mix jobs,
  // then durably establish this job's identity before any commits.
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const fs::path& p = entry.path();
    if (p.filename() == "MANIFEST.json" || p.filename() == "MANIFEST.log" ||
        p.filename() == "DATA.log" || p.extension() == ".ckpt" ||
        p.extension() == ".tmp") {
      fs::remove(p, ec);
    }
  }
  DOD_RETURN_IF_ERROR(store->WriteManifestSnapshot());
  return store;
}

bool CheckpointStore::HasTask(std::string_view phase, int index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.count({std::string(phase), index}) != 0;
}

size_t CheckpointStore::CommittedTasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

Result<std::string> CheckpointStore::LoadTask(std::string_view phase,
                                              int index) const {
  CheckpointRecord record;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = records_.find({std::string(phase), index});
    if (it == records_.end()) {
      return Status::NotFound("no committed checkpoint for " +
                              std::string(phase) + " task " +
                              std::to_string(index));
    }
    record = it->second;
  }
  const fs::path segment_path = fs::path(dir_) / record.file;
  std::ifstream in(segment_path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open checkpoint segment " +
                           segment_path.string() + ": " +
                           std::strerror(errno));
  }
  in.seekg(0, std::ios::end);
  const uint64_t segment_size = static_cast<uint64_t>(in.tellg());
  if (record.offset > segment_size ||
      record.bytes > segment_size - record.offset) {
    return Status::IoError(
        "checkpoint payload at " + record.file + "+" +
        std::to_string(record.offset) + " (" + std::to_string(record.bytes) +
        " bytes) overruns the " + std::to_string(segment_size) +
        "-byte segment — truncated or torn write");
  }
  std::string payload(record.bytes, '\0');
  in.seekg(static_cast<std::streamoff>(record.offset));
  in.read(payload.data(), static_cast<std::streamsize>(record.bytes));
  if (!in) {
    return Status::IoError("read failure on checkpoint segment " +
                           segment_path.string());
  }
  if (Fnv1a64(payload) != record.checksum) {
    return Status::IoError("checkpoint payload at " + record.file + "+" +
                           std::to_string(record.offset) +
                           " fails its checksum — corrupted");
  }
  return payload;
}

Status CheckpointStore::CommitTask(std::string_view phase, int index,
                                   const std::string& payload) {
  CheckpointRecord record;
  record.phase = std::string(phase);
  record.index = index;
  record.file = "DATA.log";
  record.bytes = payload.size();
  record.checksum = Fnv1a64(payload);

  // Payload bytes into the segment first, then the journal line — see the
  // durability protocol in the header. Both are appends to already-open
  // streams, so the held-lock work is microseconds.
  std::lock_guard<std::mutex> lock(mu_);
  DOD_RETURN_IF_ERROR(OpenLogsLocked());
  record.offset = segment_end_;
  segment_.write(payload.data(),
                 static_cast<std::streamsize>(payload.size()));
  segment_.flush();
  if (!segment_) {
    return Status::IoError("checkpoint segment append failed for " +
                           record.phase + " task " +
                           std::to_string(record.index));
  }
  segment_end_ += payload.size();
  journal_ << RecordLine(record);
  journal_.flush();
  if (!journal_) {
    return Status::IoError("checkpoint journal append failed for " +
                           record.phase + " task " +
                           std::to_string(record.index));
  }
  records_[{record.phase, record.index}] = std::move(record);
  return Status::Ok();
}

Status CheckpointStore::OpenLogsLocked() {
  if (journal_.is_open()) return Status::Ok();
  const fs::path segment_path = fs::path(dir_) / "DATA.log";
  // Resuming into a non-empty segment: new payloads append after the
  // existing bytes (including any orphaned tail from a torn commit).
  std::error_code ec;
  segment_end_ =
      fs::exists(segment_path, ec) ? fs::file_size(segment_path, ec) : 0;
  segment_.open(segment_path, std::ios::binary | std::ios::app);
  if (!segment_) {
    return Status::IoError("cannot open checkpoint segment in " + dir_ +
                           ": " + std::strerror(errno));
  }
  journal_.open(fs::path(dir_) / "MANIFEST.log",
                std::ios::binary | std::ios::app);
  if (!journal_) {
    return Status::IoError("cannot open checkpoint journal in " + dir_ +
                           ": " + std::strerror(errno));
  }
  return Status::Ok();
}

// The snapshot written when a store opens fresh: job identity plus any
// records known at that moment (none today; a future compaction could fold
// the journal in here).
Status CheckpointStore::WriteManifestSnapshot() {
  std::ostringstream out;
  out << "{\n  \"format_version\": " << kFormatVersion << ",\n"
      << "  \"job_key\": \"" << JsonEscape(job_key_) << "\",\n"
      << "  \"tasks\": [";
  bool first = true;
  for (const auto& [key, record] : records_) {
    out << (first ? "\n" : ",\n");
    first = false;
    std::string line = RecordLine(record);
    line.pop_back();  // the journal newline
    out << "    " << line;
  }
  out << "\n  ]\n}\n";
  return AtomicWriteFile(fs::path(dir_) / "MANIFEST.json", out.str());
}

}  // namespace dod
