// Copyright 2026 The DOD Authors.
//
// Deadline and cancellation propagation for long-running jobs.
//
// A `CancellationToken` is a cheap copyable handle to a shared flag the
// caller can flip from any thread (e.g. a signal handler trampoline or a
// supervising thread). A `RunControl` bundles an optional token with an
// optional absolute deadline; code on the hot path calls `Check()` at
// natural preemption points (task boundaries, per-cell loops) and
// propagates the structured kCancelled / kDeadlineExceeded status it
// returns. Both checks are wait-free reads, so sprinkling them inside
// inner loops is safe.

#ifndef DOD_DURABILITY_RUN_CONTROL_H_
#define DOD_DURABILITY_RUN_CONTROL_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "common/status.h"

namespace dod {

// Copyable handle to a shared cancellation flag. A default-constructed
// token is live (not cancelled) and can be cancelled later; all copies
// observe the same flag.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// Immutable per-run bundle of stop conditions, checked cooperatively.
class RunControl {
 public:
  RunControl() = default;

  // `deadline_seconds` <= 0 means no deadline; the deadline clock starts
  // at the call, so construct the control right before the run begins.
  static RunControl WithDeadline(double deadline_seconds,
                                 CancellationToken token) {
    RunControl control;
    control.token_ = std::move(token);
    control.has_token_ = true;
    if (deadline_seconds > 0.0) {
      control.deadline_ = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(deadline_seconds));
      control.has_deadline_ = true;
    }
    return control;
  }

  // OK while the run may continue; kCancelled / kDeadlineExceeded once a
  // stop condition fired. Cancellation wins when both have fired.
  Status Check() const {
    if (has_token_ && token_.cancelled()) {
      return Status::Cancelled("run cancelled by caller");
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      return Status::DeadlineExceeded("run exceeded its deadline");
    }
    return Status::Ok();
  }

  bool active() const { return has_token_ || has_deadline_; }

 private:
  CancellationToken token_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_token_ = false;
  bool has_deadline_ = false;
};

}  // namespace dod

#endif  // DOD_DURABILITY_RUN_CONTROL_H_
