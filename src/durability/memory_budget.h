// Copyright 2026 The DOD Authors.
//
// Cooperative memory budgeting for large transient allocations.
//
// A `MemoryBudget` tracks bytes charged against a caller-set limit. Two
// distinct questions are answered, and keeping them separate is what makes
// budget-driven decisions reproducible:
//
//  - `FitsAlone(bytes)`: would this allocation, by itself, fit the limit?
//    This is a pure function of (bytes, limit) — independent of what other
//    threads have charged — so decisions made on it (e.g. degrading the
//    columnar shuffle to the sorted path) are deterministic across thread
//    counts and interleavings, keeping outputs byte-identical.
//
//  - `TryCharge(bytes)`: account the allocation against current usage.
//    This is the real concurrent bookkeeping; it feeds the peak gauge and
//    turns genuine overcommit into structured kResourceExhausted errors.
//
// A zero limit means unlimited: every check passes, accounting still runs
// so peak usage is observable. Charges must be paired with releases; the
// RAII `MemoryCharge` does that, and also converts `std::bad_alloc` thrown
// by the guarded allocation into kResourceExhausted at its call sites.

#ifndef DOD_DURABILITY_MEMORY_BUDGET_H_
#define DOD_DURABILITY_MEMORY_BUDGET_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace dod {

class MemoryBudget {
 public:
  // `limit_bytes` == 0 disables enforcement (accounting still runs).
  explicit MemoryBudget(uint64_t limit_bytes = 0) : limit_(limit_bytes) {}

  uint64_t limit_bytes() const { return limit_; }
  uint64_t used_bytes() const { return used_.load(std::memory_order_relaxed); }
  uint64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

  // Deterministic admission check: true iff an allocation of `bytes` fits
  // the limit on its own. Use for decisions that must not depend on
  // concurrent usage (see file comment).
  bool FitsAlone(uint64_t bytes) const {
    return limit_ == 0 || bytes <= limit_;
  }

  // Charges `bytes` against current usage; false when the charge would
  // push usage past the limit (nothing is charged in that case).
  bool TryCharge(uint64_t bytes) {
    uint64_t used = used_.load(std::memory_order_relaxed);
    do {
      if (limit_ != 0 && (used >= limit_ || bytes > limit_ - used)) {
        return false;
      }
    } while (!used_.compare_exchange_weak(used, used + bytes,
                                          std::memory_order_relaxed));
    UpdatePeak(used + bytes);
    return true;
  }

  void Release(uint64_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

 private:
  void UpdatePeak(uint64_t candidate) {
    uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (candidate > peak &&
           !peak_.compare_exchange_weak(peak, candidate,
                                        std::memory_order_relaxed)) {
    }
  }

  uint64_t limit_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
};

// RAII charge against an optional budget. Usage:
//
//   MemoryCharge charge;
//   DOD_RETURN_IF_ERROR(charge.Acquire(budget, bytes, "shuffle bucket"));
//   ... allocate ...
//
// A null budget makes Acquire a no-op that always succeeds. The charge is
// released on destruction (or explicit Release()).
class MemoryCharge {
 public:
  MemoryCharge() = default;
  ~MemoryCharge() { Release(); }

  MemoryCharge(const MemoryCharge&) = delete;
  MemoryCharge& operator=(const MemoryCharge&) = delete;
  MemoryCharge(MemoryCharge&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }

  Status Acquire(MemoryBudget* budget, uint64_t bytes, const char* what) {
    Release();
    if (budget == nullptr || bytes == 0) return Status::Ok();
    if (!budget->TryCharge(bytes)) {
      return Status::ResourceExhausted(
          std::string(what) + " needs " + std::to_string(bytes) +
          " bytes but only " +
          std::to_string(budget->limit_bytes() -
                         std::min(budget->limit_bytes(),
                                  budget->used_bytes())) +
          " of the " + std::to_string(budget->limit_bytes()) +
          "-byte budget remain");
    }
    budget_ = budget;
    bytes_ = bytes;
    return Status::Ok();
  }

  void Release() {
    if (budget_ != nullptr) budget_->Release(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }

 private:
  MemoryBudget* budget_ = nullptr;
  uint64_t bytes_ = 0;
};

}  // namespace dod

#endif  // DOD_DURABILITY_MEMORY_BUDGET_H_
