// Copyright 2026 The DOD Authors.
//
// Durable checkpoint store for MapReduce jobs.
//
// A CheckpointStore owns one directory per job, holding three kinds of
// files:
//
//   MANIFEST.json — snapshot written once when the store opens fresh:
//
//     {
//       "format_version": 2,
//       "job_key": "<caller fingerprint of config + input>",
//       "tasks": [
//         {"phase": "map", "index": 3, "file": "DATA.log",
//          "offset": 0, "bytes": 4096, "checksum": "00a9c1f3e5b70d42"}
//       ]
//     }
//
//   MANIFEST.log — append-only journal; each CommitTask appends one line
//   holding a single task record in the same JSON object shape as a
//   `tasks` entry above, plus the payload's byte offset in the segment.
//   (The checksum is FNV-1a 64 over the payload, serialized as hex text
//   because JSON numbers round-trip through double in this codebase.)
//
//   DATA.log — payload segment; every committed task's payload bytes,
//   appended in commit order. Records address their payload as
//   (file, offset, bytes).
//
// Durability protocol: the payload bytes are appended to the segment
// first, then one record line is appended to the journal. Appends either
// land whole or leave a torn tail; journal replay at Open(resume) stops at
// the first unterminated or unparseable line, so a crash mid-commit merely
// loses that one record (its payload bytes are orphaned dead space in the
// segment, skipped forever) — never torn state. A task is committed iff a
// valid journal/snapshot record exists AND its payload slice matches the
// recorded length and FNV-1a checksum; anything less (truncation,
// corruption, version skew, job-key mismatch) surfaces as a structured
// Status, never UB, and the engine falls back to re-running the task.
//
// Why log-structured instead of a file per task plus a manifest rewrite
// per commit: creating/renaming a file costs ~100us of metadata syscalls
// regardless of size, and rewriting a manifest repeats that; appending to
// an open stream costs microseconds. Commits serialize on the store lock,
// but the held-lock work is two appends, so checkpointing stays in the
// noise of real task work (CI guards the overhead at <= 5%).
//
// The store is thread-safe: segment/journal appends and the record map are
// guarded by an internal mutex.

#ifndef DOD_DURABILITY_CHECKPOINT_H_
#define DOD_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dod {

// One committed-task record as stored in the manifest.
struct CheckpointRecord {
  std::string phase;  // lowercase identifier: "map", "reduce", "stream", ...
  int index = 0;
  std::string file;     // payload segment, e.g. "DATA.log"
  uint64_t offset = 0;  // payload byte offset within the segment
  uint64_t bytes = 0;
  uint64_t checksum = 0;
};

// Parsed, validated manifest contents.
struct CheckpointManifest {
  int format_version = 0;
  std::string job_key;
  std::vector<CheckpointRecord> records;
};

class CheckpointStore {
 public:
  // Version 2: spill-aware task payloads — map payloads lead with a
  // spilled flag, reduce payloads carry a fallback-reason byte. Version-1
  // stores parse differently at those offsets, so they must be rejected
  // at the manifest check rather than misread.
  static constexpr int kFormatVersion = 2;

  // Opens (creating if needed) the store at `dir` for the job identified
  // by `job_key`. With `resume` false any prior manifest and payloads are
  // discarded. With `resume` true an existing manifest is loaded and its
  // records become resumable; a manifest for a different job_key is a
  // kFailedPrecondition (refusing to mix checkpoints across configs), a
  // missing manifest is simply an empty store, and an unreadable or
  // version-skewed manifest is a structured error.
  static Result<std::unique_ptr<CheckpointStore>> Open(
      const std::string& dir, const std::string& job_key, bool resume);

  // Parses and validates manifest text. Exposed for the fuzz tests; pass
  // an empty `expected_job_key` to skip the job-key check.
  static Result<CheckpointManifest> ParseManifest(
      std::string_view text, const std::string& expected_job_key);

  // Parses and validates one journal line (a single task record object).
  // Exposed for the fuzz tests.
  static Result<CheckpointRecord> ParseRecordLine(std::string_view line);

  // True when a committed record exists for (phase, index).
  bool HasTask(std::string_view phase, int index) const;
  // Number of committed records (across both phases).
  size_t CommittedTasks() const;

  // Loads the committed payload for (phase, index), validating length and
  // checksum against the manifest. NotFound when no record exists; IoError
  // on truncation or corruption.
  Result<std::string> LoadTask(std::string_view phase, int index) const;

  // Durably records `payload` as the committed output of (phase, index),
  // replacing any prior record. On return the record survives a crash.
  Status CommitTask(std::string_view phase, int index,
                    const std::string& payload);

  const std::string& dir() const { return dir_; }
  const std::string& job_key() const { return job_key_; }

 private:
  CheckpointStore(std::string dir, std::string job_key)
      : dir_(std::move(dir)), job_key_(std::move(job_key)) {}

  Status WriteManifestSnapshot();
  Status OpenLogsLocked();

  std::string dir_;
  std::string job_key_;

  mutable std::mutex mu_;
  // (phase, index) -> record.
  std::map<std::pair<std::string, int>, CheckpointRecord> records_;
  // Append-only streams (MANIFEST.log / DATA.log), opened lazily on the
  // first commit and kept open for the store's lifetime. `segment_end_`
  // tracks the segment size — the offset of the next payload.
  std::ofstream journal_;
  std::ofstream segment_;
  uint64_t segment_end_ = 0;
};

}  // namespace dod

#endif  // DOD_DURABILITY_CHECKPOINT_H_
