// Copyright 2026 The DOD Authors.
//
// Batched distance kernels over SoABlock buffers. Three implementations —
// "scalar" (per-pair reference), "blocked" (portable, autovectorization-
// friendly loops over kSoaWidth-wide lanes) and "avx2" (intrinsics, chosen
// at runtime behind a CPU probe) — share one function-pointer table.
//
// Exactness contract: every implementation returns bit-identical verdicts.
// Squared distances are computed as sum_d (q[d] - c[d])^2 with each
// subtract / multiply / add rounded individually (the kernels library is
// built with FP contraction off and the AVX2 path uses explicit mul+add,
// never FMA), accumulated in ascending dimension order — exactly the
// arithmetic of SquaredEuclidean in common/distance.h. Threshold tests
// compare squared distances with <=, so a pair at distance exactly r is a
// neighbor in every implementation; NaN coordinates make the comparison
// false everywhere (ordered compares), excluding the pair identically.
// Pad slots carry +infinity coordinates and are never counted, matched or
// charged to the pair counters.
//
// What is *not* promised across implementations is the evaluation
// schedule: batched kernels early-exit at block-group granularity (the
// full-block loop processes up to two blocks per cap check), so counters
// of evaluated pairs may exceed the scalar path's by up to 2*kSoaWidth - 1
// per capped query. Verdicts (count >= k, membership, minima, distances)
// are identical.

#ifndef DOD_KERNELS_DISTANCE_KERNELS_H_
#define DOD_KERNELS_DISTANCE_KERNELS_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "kernels/kernel_mode.h"
#include "kernels/soa_block.h"

namespace dod {

struct KernelOps {
  const char* name;

  // Number of slots in [begin, end) whose squared distance to `q` is
  // <= sq_radius, excluding slots whose id equals skip_id (pass
  // kSoaInvalidId to skip nothing). When cap >= 0, stops scanning once the
  // running count reaches cap — the returned count is then only guaranteed
  // to be >= cap; when cap < 0 the exact count is returned. `pairs`, when
  // non-null, accrues the number of pairs evaluated.
  int (*count_within_radius)(const SoABlock& points, size_t begin, size_t end,
                             const double* q, double sq_radius,
                             uint32_t skip_id, int cap, uint64_t* pairs);

  // Appends the ids of all slots within sq_radius of `q` (skip_id excluded)
  // to `out`, in slot order.
  void (*range_mask)(const SoABlock& points, const double* q,
                     double sq_radius, uint32_t skip_id,
                     std::vector<uint32_t>* out, uint64_t* pairs);

  // Minimum squared distance from `q` to any slot; +infinity when the
  // buffer is empty or every distance is NaN.
  double (*min_squared_distance)(const SoABlock& points, const double* q,
                                 uint64_t* pairs);

  // Writes the squared distance from `q` to slot j into out[j] for every
  // j < points.size(). `out` must hold points.size() doubles.
  void (*squared_distances)(const SoABlock& points, const double* q,
                            double* out, uint64_t* pairs);

  // Block×segment pairwise count: for each of the `num_queries` query
  // points (row-major, points.dims() doubles per row), adds the number of
  // slots in [begin, end) within sq_radius to counts[i]. Counts are exact
  // (no cap, no skip — a query must not itself occupy a scanned slot) and
  // bit-identical across implementations; one call covers a whole
  // query-block × candidate-segment tile, the streaming summary layer's
  // insert-count / expiry-decrement primitive.
  void (*count_block_within_radius)(const SoABlock& points, size_t begin,
                                    size_t end, const double* queries,
                                    size_t num_queries, double sq_radius,
                                    uint32_t* counts, uint64_t* pairs);
};

// Table for a mode: kScalar -> scalar; kAuto -> AVX2 when compiled in and
// supported by this CPU, else blocked.
const KernelOps& GetKernelOps(KernelMode mode);

// Table by implementation name ("scalar" | "blocked" | "avx2"); nullptr
// when unknown or unavailable on this build/CPU. Used by benches and tests
// to pin an implementation regardless of dispatch.
const KernelOps* GetKernelOpsByName(std::string_view impl);

// True iff the AVX2 specialization is compiled in and this CPU supports it.
bool Avx2KernelsAvailable();

}  // namespace dod

#endif  // DOD_KERNELS_DISTANCE_KERNELS_H_
