// Copyright 2026 The DOD Authors.

#include "kernels/soa_block.h"

#include "observability/metrics.h"

namespace dod {
namespace {

// Layout-build accounting. Charged once per Assign (outside the timed
// kernel loops, which stay metrics-free), so the registry shows how many
// SoA buffers the detectors build and how many points flow through them.
void RecordAssign(size_t points) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static const uint32_t kAssigns =
      metrics.Id("kernels.soa_assigns", MetricKind::kCounter);
  static const uint32_t kPoints =
      metrics.Id("kernels.soa_points", MetricKind::kCounter);
  metrics.Increment(kAssigns);
  metrics.Increment(kPoints, points);
}

}  // namespace

SoABlock::SoABlock(int dims) : dims_(dims) {
  DOD_CHECK(dims >= 1 && dims <= kMaxDimensions);
}

void SoABlock::Reserve(size_t n) {
  const size_t blocks = (n + kSoaWidth - 1) / kSoaWidth;
  coords_.reserve(blocks * static_cast<size_t>(dims_) * kSoaWidth);
  ids_.reserve(blocks * kSoaWidth);
}

void SoABlock::Append(const double* p, uint32_t id) {
  const size_t slot = size_ % kSoaWidth;
  if (slot == 0) {
    // Open a fresh block, fully padded; real slots overwrite below.
    coords_.resize(coords_.size() + static_cast<size_t>(dims_) * kSoaWidth,
                   kSoaPadCoordinate);
    ids_.resize(ids_.size() + kSoaWidth, kSoaInvalidId);
  }
  const size_t block = size_ / kSoaWidth;
  double* base =
      coords_.data() + block * static_cast<size_t>(dims_) * kSoaWidth;
  for (int d = 0; d < dims_; ++d) {
    base[static_cast<size_t>(d) * kSoaWidth + slot] = p[d];
  }
  ids_[size_] = id;
  ++size_;
}

void SoABlock::Assign(const Dataset& points) {
  DOD_CHECK(points.dims() == dims_);
  Clear();
  Reserve(points.size());
  for (uint32_t i = 0; i < points.size(); ++i) Append(points[i], i);
  RecordAssign(points.size());
}

void SoABlock::AssignPermuted(const Dataset& points,
                              const std::vector<uint32_t>& order) {
  DOD_CHECK(points.dims() == dims_);
  DOD_CHECK(order.size() == points.size());
  Clear();
  Reserve(points.size());
  for (uint32_t id : order) Append(points[id], id);
  RecordAssign(points.size());
}

}  // namespace dod
