// Copyright 2026 The DOD Authors.
//
// Kernel selection knob. `kAuto` picks the fastest batched implementation
// the hardware supports (AVX2 when compiled in and probed at runtime,
// otherwise the portable blocked kernel); `kScalar` forces the one-pair-
// at-a-time reference path. Every implementation returns bit-identical
// verdicts — the knob is an escape hatch and an A/B lever, never a
// correctness trade.

#ifndef DOD_KERNELS_KERNEL_MODE_H_
#define DOD_KERNELS_KERNEL_MODE_H_

#include <string_view>

namespace dod {

enum class KernelMode {
  kScalar,  // per-pair reference kernels
  kAuto,    // best available batched kernels (blocked or AVX2)
};

const char* KernelModeName(KernelMode mode);

// Parses "scalar" / "auto". Returns false on unknown names.
bool ParseKernelMode(std::string_view name, KernelMode* mode);

}  // namespace dod

#endif  // DOD_KERNELS_KERNEL_MODE_H_
