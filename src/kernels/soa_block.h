// Copyright 2026 The DOD Authors.
//
// Blocked structure-of-arrays coordinate buffer: points are stored in
// fixed-width blocks of kSoaWidth slots, with each dimension's coordinates
// contiguous inside a block ("lanes"). The layout lets the distance kernels
// evaluate one query against kSoaWidth candidates with unit-stride loads —
// the data-level parallelism complement to the thread-level parallelism of
// src/runtime/.
//
//   block 0: [x0..x7][y0..y7]...  block 1: [x8..x15][y8..y15]...
//
// Tail blocks are padded: pad slots carry +infinity coordinates (their
// squared distance to any finite query is +infinity, so threshold and
// minimum kernels ignore them with no masking) and the kSoaInvalidId
// sentinel, which no real point id can take.

#ifndef DOD_KERNELS_SOA_BLOCK_H_
#define DOD_KERNELS_SOA_BLOCK_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/dataset.h"

namespace dod {

// Slots per block. Eight doubles = two AVX2 vectors = one cache line per
// dimension lane.
inline constexpr size_t kSoaWidth = 8;

// Id carried by pad slots; also usable as a "skip nothing" sentinel for the
// kernels' skip_id parameter (a Dataset can never hold 2^32 - 1 points).
inline constexpr uint32_t kSoaInvalidId = 0xFFFFFFFFu;

// Coordinate carried by pad slots.
inline constexpr double kSoaPadCoordinate =
    std::numeric_limits<double>::infinity();

class SoABlock {
 public:
  explicit SoABlock(int dims);

  int dims() const { return dims_; }
  // Logical number of points (pad slots excluded).
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t num_blocks() const {
    return coords_.size() / (static_cast<size_t>(dims_) * kSoaWidth);
  }

  // Drops all points; keeps capacity and dimensionality.
  void Clear() {
    coords_.clear();
    ids_.clear();
    size_ = 0;
  }

  void Reserve(size_t n);

  // Appends one point with an arbitrary caller-chosen id (used by the
  // kernels to skip self-matches and report range hits).
  void Append(const double* p, uint32_t id);

  // Rebuilds the buffer from a whole dataset; slot j holds point j.
  void Assign(const Dataset& points);

  // Rebuilds the buffer from `points` in permutation order: slot j holds
  // point `order[j]` and carries its original id (Nested-Loop probe buffer).
  void AssignPermuted(const Dataset& points,
                      const std::vector<uint32_t>& order);

  // Rounds size() up to the next block boundary; the skipped slots keep
  // their pad coordinates/ids. Lets several independent point segments
  // share one buffer with each segment starting on a block boundary
  // (per-cell probe segments of a task arena).
  void AlignToBlock() { size_ = num_blocks() * kSoaWidth; }

  // Coordinates of dimension `dim` for the kSoaWidth slots of `block`.
  const double* Lane(size_t block, int dim) const {
    return coords_.data() + (block * dims_ + static_cast<size_t>(dim)) *
                                kSoaWidth;
  }

  // Ids of the kSoaWidth slots of `block` (pad slots: kSoaInvalidId).
  const uint32_t* Ids(size_t block) const {
    return ids_.data() + block * kSoaWidth;
  }

  uint32_t IdAt(size_t slot) const { return ids_[slot]; }

 private:
  int dims_;
  size_t size_ = 0;
  std::vector<double> coords_;
  std::vector<uint32_t> ids_;
};

}  // namespace dod

#endif  // DOD_KERNELS_SOA_BLOCK_H_
