// Copyright 2026 The DOD Authors.
//
// Scalar (reference) and blocked (portable batched) kernel implementations
// plus the runtime dispatch table. The AVX2 specialization lives in
// distance_kernels_avx2.cc.

#include "kernels/distance_kernels.h"

#include <algorithm>
#include <limits>

namespace dod {
namespace internal {
// Defined in distance_kernels_avx2.cc; nullptr when not compiled in.
const KernelOps* Avx2KernelOpsOrNull();
}  // namespace internal

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---- scalar: one pair at a time, per-pair early exit --------------------

inline double ScalarSquaredDistance(const SoABlock& pts, size_t slot,
                                    const double* q, int dims) {
  const size_t block = slot / kSoaWidth;
  const size_t s = slot % kSoaWidth;
  double sum = 0.0;
  for (int d = 0; d < dims; ++d) {
    const double diff = q[d] - pts.Lane(block, d)[s];
    sum += diff * diff;
  }
  return sum;
}

int ScalarCount(const SoABlock& pts, size_t begin, size_t end,
                const double* q, double sq_radius, uint32_t skip_id, int cap,
                uint64_t* pairs) {
  if (cap == 0) return 0;
  const int dims = pts.dims();
  uint64_t evals = 0;
  int count = 0;
  for (size_t slot = begin; slot < end; ++slot) {
    if (pts.IdAt(slot) == skip_id) continue;
    ++evals;
    if (ScalarSquaredDistance(pts, slot, q, dims) <= sq_radius) {
      ++count;
      if (cap >= 0 && count >= cap) break;
    }
  }
  if (pairs != nullptr) *pairs += evals;
  return count;
}

void ScalarRangeMask(const SoABlock& pts, const double* q, double sq_radius,
                     uint32_t skip_id, std::vector<uint32_t>* out,
                     uint64_t* pairs) {
  const int dims = pts.dims();
  uint64_t evals = 0;
  for (size_t slot = 0; slot < pts.size(); ++slot) {
    const uint32_t id = pts.IdAt(slot);
    if (id == skip_id) continue;
    ++evals;
    if (ScalarSquaredDistance(pts, slot, q, dims) <= sq_radius) {
      out->push_back(id);
    }
  }
  if (pairs != nullptr) *pairs += evals;
}

double ScalarMin(const SoABlock& pts, const double* q, uint64_t* pairs) {
  const int dims = pts.dims();
  double best = kInf;
  for (size_t slot = 0; slot < pts.size(); ++slot) {
    const double d2 = ScalarSquaredDistance(pts, slot, q, dims);
    if (d2 < best) best = d2;  // NaN compares false: excluded
  }
  if (pairs != nullptr) *pairs += pts.size();
  return best;
}

void ScalarDists(const SoABlock& pts, const double* q, double* out,
                 uint64_t* pairs) {
  const int dims = pts.dims();
  for (size_t slot = 0; slot < pts.size(); ++slot) {
    out[slot] = ScalarSquaredDistance(pts, slot, q, dims);
  }
  if (pairs != nullptr) *pairs += pts.size();
}

// ---- blocked: whole kSoaWidth-wide blocks, block-granular early exit ----
//
// The inner loops run over a fixed-width local accumulator so the compiler
// can vectorize them for whatever the baseline ISA offers; arithmetic per
// slot is identical to the scalar kernel (same order, no contraction — the
// library is built with -ffp-contract=off).

struct BlockAcc {
  double d2[kSoaWidth];
};

// Dimensionality is a compile-time constant in the hot loops: kMaxDimensions
// is tiny, so every dims value gets its own instantiation (dispatched once
// per call, below) where the d-loop fully unrolls and the accumulator never
// round-trips through the stack between dimension passes.
template <int kDims>
inline void BlockSquaredDistances(const SoABlock& pts, size_t block,
                                  const double* q, BlockAcc* acc) {
  for (size_t s = 0; s < kSoaWidth; ++s) acc->d2[s] = 0.0;
  for (int d = 0; d < kDims; ++d) {
    const double* lane = pts.Lane(block, d);
    const double qd = q[d];
    for (size_t s = 0; s < kSoaWidth; ++s) {
      const double diff = qd - lane[s];
      acc->d2[s] += diff * diff;
    }
  }
}

// Expands to a per-dims dispatch of a templated kernel. kMaxDimensions is 8.
#define DOD_DISPATCH_DIMS(fn, dims, ...)  \
  switch (dims) {                         \
    case 1: return fn<1>(__VA_ARGS__);    \
    case 2: return fn<2>(__VA_ARGS__);    \
    case 3: return fn<3>(__VA_ARGS__);    \
    case 4: return fn<4>(__VA_ARGS__);    \
    case 5: return fn<5>(__VA_ARGS__);    \
    case 6: return fn<6>(__VA_ARGS__);    \
    case 7: return fn<7>(__VA_ARGS__);    \
    default: return fn<8>(__VA_ARGS__);   \
  }

template <int kDims>
int BlockedCountT(const SoABlock& pts, size_t begin, size_t end,
                  const double* q, double sq_radius, uint32_t skip_id,
                  int cap, uint64_t* pairs) {
  uint64_t evals = 0;
  int count = 0;

  // Partial block: per-slot branchless compare+count over [lo, hi). Pad
  // slots fail both tests (invalid id never equals a real skip_id but their
  // d2 is +inf/NaN, never <= sq_radius). Pure so the main loop's
  // accumulators stay in registers.
  const auto partial = [&pts, q, sq_radius, skip_id](
                           size_t b, size_t lo, size_t hi, uint64_t* kept) {
    BlockAcc acc;
    BlockSquaredDistances<kDims>(pts, b, q, &acc);
    const uint32_t* ids = pts.Ids(b);
    int within = 0;
    for (size_t s = lo; s < hi; ++s) {
      const int keep = ids[s] != skip_id ? 1 : 0;
      *kept += static_cast<uint64_t>(keep);
      within += keep & (acc.d2[s] <= sq_radius ? 1 : 0);
    }
    return within;
  };

  size_t b = begin / kSoaWidth;
  const size_t last = (end + kSoaWidth - 1) / kSoaWidth;
  if (begin % kSoaWidth != 0 && b < last) {
    count += partial(b, begin % kSoaWidth,
                     std::min(end - b * kSoaWidth, kSoaWidth), &evals);
    ++b;
    if (cap >= 0 && count >= cap) {
      if (pairs != nullptr) *pairs += evals;
      return count;
    }
  }

  // Full blocks: fixed-trip-count loops the vectorizer keeps wide, with no
  // boundary logic inside. Two independent reductions avoid cross-width
  // mask mixing: distance verdicts over doubles, skip hits over ids.
  // Callers pass a unique id (or none), so skip hits are at most one slot
  // per sweep and the within-radius correction for skipped slots is a
  // rarely-taken scalar branch. Unrolled two blocks per iteration so the
  // horizontal reductions and the cap check amortize; the cap therefore
  // gates at 2*kSoaWidth granularity, which only bounds counter overshoot,
  // never the verdict.
  const size_t full_end = std::min(end / kSoaWidth, last);
  while (b < full_end) {
    const size_t group = std::min<size_t>(full_end - b, 2);
    int within = 0;
    int skip_hits = 0;
    for (size_t g = 0; g < group; ++g) {
      const uint32_t* ids = pts.Ids(b + g);
      for (size_t s = 0; s < kSoaWidth; ++s) {
        skip_hits += ids[s] == skip_id ? 1 : 0;
      }
    }
    for (size_t g = 0; g < group; ++g) {
      const double* lanes = pts.Lane(b + g, 0);
      for (size_t s = 0; s < kSoaWidth; ++s) {
        double sum = 0.0;
        for (int d = 0; d < kDims; ++d) {
          const double diff = q[d] - lanes[d * kSoaWidth + s];
          sum += diff * diff;
        }
        within += sum <= sq_radius ? 1 : 0;
      }
    }
    if (skip_hits != 0) {
      for (size_t s = b * kSoaWidth; s < (b + group) * kSoaWidth; ++s) {
        if (pts.IdAt(s) == skip_id &&
            ScalarSquaredDistance(pts, s, q, kDims) <= sq_radius) {
          --within;
        }
      }
    }
    evals += group * kSoaWidth - static_cast<uint64_t>(skip_hits);
    count += within;
    b += group;
    if (cap >= 0 && count >= cap) {
      if (pairs != nullptr) *pairs += evals;
      return count;
    }
  }

  // Tail partial block (end not on a block boundary).
  if (b < last && (cap < 0 || count < cap)) {
    count += partial(b, 0, end - b * kSoaWidth, &evals);
  }
  if (pairs != nullptr) *pairs += evals;
  return count;
}

int BlockedCount(const SoABlock& pts, size_t begin, size_t end,
                 const double* q, double sq_radius, uint32_t skip_id, int cap,
                 uint64_t* pairs) {
  if (cap == 0) return 0;
  DOD_DISPATCH_DIMS(BlockedCountT, pts.dims(), pts, begin, end, q, sq_radius,
                    skip_id, cap, pairs);
}

template <int kDims>
void BlockedRangeMaskT(const SoABlock& pts, const double* q, double sq_radius,
                       uint32_t skip_id, std::vector<uint32_t>* out,
                       uint64_t* pairs) {
  uint64_t evals = 0;
  BlockAcc acc;
  for (size_t b = 0; b < pts.num_blocks(); ++b) {
    const size_t base = b * kSoaWidth;
    const size_t hi = std::min(pts.size() - base, kSoaWidth);
    BlockSquaredDistances<kDims>(pts, b, q, &acc);
    const uint32_t* ids = pts.Ids(b);
    for (size_t s = 0; s < hi; ++s) {
      if (ids[s] == skip_id) continue;
      ++evals;
      if (acc.d2[s] <= sq_radius) out->push_back(ids[s]);
    }
  }
  if (pairs != nullptr) *pairs += evals;
}

void BlockedRangeMask(const SoABlock& pts, const double* q, double sq_radius,
                      uint32_t skip_id, std::vector<uint32_t>* out,
                      uint64_t* pairs) {
  DOD_DISPATCH_DIMS(BlockedRangeMaskT, pts.dims(), pts, q, sq_radius, skip_id,
                    out, pairs);
}

template <int kDims>
double BlockedMinT(const SoABlock& pts, const double* q, uint64_t* pairs) {
  double best = kInf;
  BlockAcc acc;
  for (size_t b = 0; b < pts.num_blocks(); ++b) {
    BlockSquaredDistances<kDims>(pts, b, q, &acc);
    // Pad slots hold +infinity coordinates: their d2 is +infinity (or NaN
    // for non-finite queries), so the min skips them like the scalar path.
    for (size_t s = 0; s < kSoaWidth; ++s) {
      if (acc.d2[s] < best) best = acc.d2[s];
    }
  }
  if (pairs != nullptr) *pairs += pts.size();
  return best;
}

double BlockedMin(const SoABlock& pts, const double* q, uint64_t* pairs) {
  DOD_DISPATCH_DIMS(BlockedMinT, pts.dims(), pts, q, pairs);
}

template <int kDims>
void BlockedDistsT(const SoABlock& pts, const double* q, double* out,
                   uint64_t* pairs) {
  BlockAcc acc;
  for (size_t b = 0; b < pts.num_blocks(); ++b) {
    const size_t base = b * kSoaWidth;
    const size_t hi = std::min(pts.size() - base, kSoaWidth);
    BlockSquaredDistances<kDims>(pts, b, q, &acc);
    for (size_t s = 0; s < hi; ++s) out[base + s] = acc.d2[s];
  }
  if (pairs != nullptr) *pairs += pts.size();
}

void BlockedDists(const SoABlock& pts, const double* q, double* out,
                  uint64_t* pairs) {
  DOD_DISPATCH_DIMS(BlockedDistsT, pts.dims(), pts, q, out, pairs);
}

// Pairwise tiles reuse each implementation's single-query count with
// "skip nothing" and no cap, so the per-pair arithmetic (and therefore the
// exactness contract) is inherited rather than re-proved. The candidate
// segment stays hot across queries — it is the small side of the tile.
void ScalarCountBlock(const SoABlock& pts, size_t begin, size_t end,
                      const double* queries, size_t num_queries,
                      double sq_radius, uint32_t* counts, uint64_t* pairs) {
  const int dims = pts.dims();
  for (size_t i = 0; i < num_queries; ++i) {
    counts[i] += static_cast<uint32_t>(
        ScalarCount(pts, begin, end, queries + i * dims, sq_radius,
                    kSoaInvalidId, /*cap=*/-1, pairs));
  }
}

void BlockedCountBlock(const SoABlock& pts, size_t begin, size_t end,
                       const double* queries, size_t num_queries,
                       double sq_radius, uint32_t* counts, uint64_t* pairs) {
  const int dims = pts.dims();
  for (size_t i = 0; i < num_queries; ++i) {
    counts[i] += static_cast<uint32_t>(
        BlockedCount(pts, begin, end, queries + i * dims, sq_radius,
                     kSoaInvalidId, /*cap=*/-1, pairs));
  }
}

constexpr KernelOps kScalarOps = {"scalar", ScalarCount, ScalarRangeMask,
                                  ScalarMin, ScalarDists, ScalarCountBlock};
constexpr KernelOps kBlockedOps = {"blocked", BlockedCount, BlockedRangeMask,
                                   BlockedMin, BlockedDists,
                                   BlockedCountBlock};

}  // namespace

const char* KernelModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kScalar:
      return "scalar";
    case KernelMode::kAuto:
      return "auto";
  }
  return "unknown";
}

bool ParseKernelMode(std::string_view name, KernelMode* mode) {
  if (name == "scalar") {
    *mode = KernelMode::kScalar;
    return true;
  }
  if (name == "auto") {
    *mode = KernelMode::kAuto;
    return true;
  }
  return false;
}

bool Avx2KernelsAvailable() {
  static const bool available = [] {
    if (internal::Avx2KernelOpsOrNull() == nullptr) return false;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
  }();
  return available;
}

const KernelOps& GetKernelOps(KernelMode mode) {
  if (mode == KernelMode::kScalar) return kScalarOps;
  if (Avx2KernelsAvailable()) return *internal::Avx2KernelOpsOrNull();
  return kBlockedOps;
}

const KernelOps* GetKernelOpsByName(std::string_view impl) {
  if (impl == "scalar") return &kScalarOps;
  if (impl == "blocked") return &kBlockedOps;
  if (impl == "avx2") {
    return Avx2KernelsAvailable() ? internal::Avx2KernelOpsOrNull() : nullptr;
  }
  return nullptr;
}

}  // namespace dod
