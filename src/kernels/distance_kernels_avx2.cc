// Copyright 2026 The DOD Authors.
//
// AVX2 specialization of the distance kernels. Compiled into every build on
// x86-64 GCC/Clang (unless DOD_DISABLE_AVX2 is defined) via per-function
// target attributes; callers reach it only through the dispatch in
// distance_kernels.cc, which probes the CPU at runtime first.
//
// Exactness: squared distances use explicit sub/mul/add intrinsics — never
// FMA — so every lane performs the same individually-rounded operation
// sequence as the scalar kernel. Threshold compares use _CMP_LE_OQ
// (ordered: NaN yields false, ties at exactly r yield true), matching the
// scalar `<=` bit for bit.

#include "kernels/distance_kernels.h"

#if !defined(DOD_DISABLE_AVX2) && defined(__GNUC__) && defined(__x86_64__)
#define DOD_KERNELS_COMPILE_AVX2 1
#else
#define DOD_KERNELS_COMPILE_AVX2 0
#endif

#if DOD_KERNELS_COMPILE_AVX2

#include <immintrin.h>

#include <algorithm>
#include <limits>

#define DOD_AVX2 __attribute__((target("avx2")))

namespace dod {
namespace {

// Squared distances from `q` to the kSoaWidth slots of `block`, as two
// 4-wide vectors (slots 0-3 and 4-7).
DOD_AVX2 inline void BlockSquaredDistances(const SoABlock& pts, size_t block,
                                           const double* q, int dims,
                                           __m256d* lo, __m256d* hi) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  for (int d = 0; d < dims; ++d) {
    const double* lane = pts.Lane(block, d);
    const __m256d qd = _mm256_set1_pd(q[d]);
    const __m256d d0 = _mm256_sub_pd(qd, _mm256_loadu_pd(lane));
    const __m256d d1 = _mm256_sub_pd(qd, _mm256_loadu_pd(lane + 4));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
  }
  *lo = acc0;
  *hi = acc1;
}

// Bit s set iff slot s is within sq_radius (NaN distances excluded).
DOD_AVX2 inline unsigned WithinMask(__m256d lo, __m256d hi,
                                    double sq_radius) {
  const __m256d r = _mm256_set1_pd(sq_radius);
  const unsigned m0 = static_cast<unsigned>(
      _mm256_movemask_pd(_mm256_cmp_pd(lo, r, _CMP_LE_OQ)));
  const unsigned m1 = static_cast<unsigned>(
      _mm256_movemask_pd(_mm256_cmp_pd(hi, r, _CMP_LE_OQ)));
  return m0 | (m1 << 4);
}

// Bit s set iff slot s carries skip_id.
DOD_AVX2 inline unsigned SkipMask(const uint32_t* ids, uint32_t skip_id) {
  const __m256i v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids));
  const __m256i eq =
      _mm256_cmpeq_epi32(v, _mm256_set1_epi32(static_cast<int>(skip_id)));
  return static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
}

DOD_AVX2 int Avx2Count(const SoABlock& pts, size_t begin, size_t end,
                       const double* q, double sq_radius, uint32_t skip_id,
                       int cap, uint64_t* pairs) {
  if (cap == 0) return 0;
  const int dims = pts.dims();
  uint64_t evals = 0;
  int count = 0;
  const size_t first = begin / kSoaWidth;
  const size_t last = (end + kSoaWidth - 1) / kSoaWidth;
  for (size_t b = first; b < last; ++b) {
    const size_t base = b * kSoaWidth;
    const size_t lo_slot = begin > base ? begin - base : 0;
    const size_t hi_slot = std::min(end - base, kSoaWidth);
    __m256d d0, d1;
    BlockSquaredDistances(pts, b, q, dims, &d0, &d1);
    const unsigned range =
        ((1u << hi_slot) - 1u) & ~((1u << lo_slot) - 1u);
    const unsigned valid = range & ~SkipMask(pts.Ids(b), skip_id);
    evals += static_cast<unsigned>(__builtin_popcount(valid));
    count += __builtin_popcount(WithinMask(d0, d1, sq_radius) & valid);
    if (cap >= 0 && count >= cap) break;
  }
  if (pairs != nullptr) *pairs += evals;
  return count;
}

DOD_AVX2 void Avx2RangeMask(const SoABlock& pts, const double* q,
                            double sq_radius, uint32_t skip_id,
                            std::vector<uint32_t>* out, uint64_t* pairs) {
  const int dims = pts.dims();
  uint64_t evals = 0;
  for (size_t b = 0; b < pts.num_blocks(); ++b) {
    const size_t base = b * kSoaWidth;
    const size_t hi_slot = std::min(pts.size() - base, kSoaWidth);
    __m256d d0, d1;
    BlockSquaredDistances(pts, b, q, dims, &d0, &d1);
    const uint32_t* ids = pts.Ids(b);
    const unsigned range = (1u << hi_slot) - 1u;
    const unsigned valid = range & ~SkipMask(ids, skip_id);
    evals += static_cast<unsigned>(__builtin_popcount(valid));
    unsigned hits = WithinMask(d0, d1, sq_radius) & valid;
    while (hits != 0) {  // ascending slot order
      const int s = __builtin_ctz(hits);
      out->push_back(ids[s]);
      hits &= hits - 1;
    }
  }
  if (pairs != nullptr) *pairs += evals;
}

DOD_AVX2 double Avx2Min(const SoABlock& pts, const double* q,
                        uint64_t* pairs) {
  const int dims = pts.dims();
  __m256d best =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());
  for (size_t b = 0; b < pts.num_blocks(); ++b) {
    __m256d d0, d1;
    BlockSquaredDistances(pts, b, q, dims, &d0, &d1);
    // min_pd(a, b) returns b when a is NaN, so NaN distances are excluded
    // exactly like the scalar `<` update; pad slots contribute +infinity.
    best = _mm256_min_pd(d0, best);
    best = _mm256_min_pd(d1, best);
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, best);
  double result = std::numeric_limits<double>::infinity();
  for (double v : lanes) {
    if (v < result) result = v;
  }
  if (pairs != nullptr) *pairs += pts.size();
  return result;
}

DOD_AVX2 void Avx2Dists(const SoABlock& pts, const double* q, double* out,
                        uint64_t* pairs) {
  const int dims = pts.dims();
  for (size_t b = 0; b < pts.num_blocks(); ++b) {
    const size_t base = b * kSoaWidth;
    const size_t hi_slot = std::min(pts.size() - base, kSoaWidth);
    __m256d d0, d1;
    BlockSquaredDistances(pts, b, q, dims, &d0, &d1);
    if (hi_slot == kSoaWidth) {
      _mm256_storeu_pd(out + base, d0);
      _mm256_storeu_pd(out + base + 4, d1);
    } else {
      double tmp[kSoaWidth];
      _mm256_storeu_pd(tmp, d0);
      _mm256_storeu_pd(tmp + 4, d1);
      for (size_t s = 0; s < hi_slot; ++s) out[base + s] = tmp[s];
    }
  }
  if (pairs != nullptr) *pairs += pts.size();
}

DOD_AVX2 void Avx2CountBlock(const SoABlock& pts, size_t begin, size_t end,
                             const double* queries, size_t num_queries,
                             double sq_radius, uint32_t* counts,
                             uint64_t* pairs) {
  const int dims = pts.dims();
  for (size_t i = 0; i < num_queries; ++i) {
    counts[i] += static_cast<uint32_t>(
        Avx2Count(pts, begin, end, queries + i * dims, sq_radius,
                  kSoaInvalidId, /*cap=*/-1, pairs));
  }
}

constexpr KernelOps kAvx2Ops = {"avx2", Avx2Count, Avx2RangeMask, Avx2Min,
                                Avx2Dists, Avx2CountBlock};

}  // namespace

namespace internal {
const KernelOps* Avx2KernelOpsOrNull() { return &kAvx2Ops; }
}  // namespace internal

}  // namespace dod

#else  // !DOD_KERNELS_COMPILE_AVX2

namespace dod {
namespace internal {
const KernelOps* Avx2KernelOpsOrNull() { return nullptr; }
}  // namespace internal
}  // namespace dod

#endif  // DOD_KERNELS_COMPILE_AVX2
