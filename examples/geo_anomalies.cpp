// Copyright 2026 The DOD Authors.
//
// Geospatial anomaly hunting — the workload that motivates the paper's
// OpenStreetMap evaluation: find isolated buildings (mapping errors, remote
// structures) in regional building extracts whose density profiles differ
// enormously.
//
// The example runs the same detection over four OSM-like regions and shows
// how the multi-tactic planner adapts: dense New York partitions get
// Cell-Based, sparse Ohio partitions get Nested-Loop, and the outlier rate
// tracks how rural a region is.
//
//   build/examples/geo_anomalies [points_per_region]

#include <cstdio>
#include <cstdlib>

#include "core/pipeline.h"
#include "data/geo_like.h"

int main(int argc, char** argv) {
  size_t n = 30000;
  if (argc > 1) n = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));

  dod::DetectionParams params;
  params.radius = 5.0;
  params.min_neighbors = 4;

  const dod::GeoRegion regions[] = {
      dod::GeoRegion::kOhio, dod::GeoRegion::kMassachusetts,
      dod::GeoRegion::kCalifornia, dod::GeoRegion::kNewYork};

  std::printf("%-4s %10s %12s %10s %18s %12s\n", "reg", "points",
              "density", "outliers", "plan (NL/CB)", "time (s)");
  for (dod::GeoRegion region : regions) {
    const dod::Dataset data = dod::GenerateGeoRegion(region, n, /*seed=*/7);
    const dod::Rect bounds = data.Bounds();
    const double density = static_cast<double>(data.size()) / bounds.Area();

    dod::DodPipeline pipeline(dod::DodConfig::Dmt(params));
    const dod::Result<dod::DodResult> run = pipeline.Run(data);
    if (!run.ok()) {
      std::fprintf(stderr, "pipeline failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    const dod::DodResult& result = run.value();

    size_t nl = 0, cb = 0;
    for (dod::AlgorithmKind kind : result.plan.algorithm_plan) {
      (kind == dod::AlgorithmKind::kNestedLoop ? nl : cb)++;
    }
    std::printf("%-4s %10zu %12.4f %10zu %10zu/%-6zu %12.4f\n",
                std::string(dod::GeoRegionName(region)).c_str(), data.size(),
                density, result.outliers.size(), nl, cb,
                result.breakdown.total());
  }

  std::printf(
      "\nNote how the algorithm plan flips toward Cell-Based as regions get\n"
      "denser — the Corollary 4.3 selection at work on real-looking data.\n");
  return 0;
}
