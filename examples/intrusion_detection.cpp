// Copyright 2026 The DOD Authors.
//
// Network-intrusion detection — one of the motivating applications in the
// paper's introduction. We synthesize connection records as points in a
// 3-d feature space (log bytes sent, log duration, destination-port bucket)
// where normal traffic forms dense behavioural clusters (web, ssh, dns,
// bulk transfer) and attacks are injected far from all clusters.
//
// DOD flags the distance-threshold outliers; the example reports how many
// injected attacks were recovered (recall) and how many normal connections
// were flagged (false positives).
//
//   build/examples/intrusion_detection

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "core/pipeline.h"

namespace {

struct TrafficData {
  dod::Dataset points{3};
  std::unordered_set<dod::PointId> attack_ids;
};

TrafficData SynthesizeTraffic(size_t normal, size_t attacks, uint64_t seed) {
  dod::Rng rng(seed);
  TrafficData out;
  out.points.Reserve(normal + attacks);

  // Behavioural clusters: {log-bytes, log-duration, port-bucket} centers.
  const double centers[4][3] = {
      {8.0, 1.0, 10.0},   // web: medium payloads, short
      {5.0, 6.0, 20.0},   // ssh: small payloads, long sessions
      {3.0, 0.5, 30.0},   // dns: tiny and instant
      {13.0, 4.0, 40.0},  // bulk transfer: huge payloads
  };
  const double sigma[3] = {0.8, 0.7, 1.2};

  dod::Point p(3);
  for (size_t i = 0; i < normal; ++i) {
    const size_t c = rng.NextBounded(4);
    for (int d = 0; d < 3; ++d) {
      p[d] = centers[c][d] + sigma[d] * rng.NextGaussian();
    }
    out.points.Append(p);
  }
  // Attacks: uniform over the whole feature space, i.e. combinations of
  // bytes/duration/port no normal service produces.
  for (size_t i = 0; i < attacks; ++i) {
    p[0] = rng.NextUniform(0.0, 16.0);
    p[1] = rng.NextUniform(0.0, 8.0);
    p[2] = rng.NextUniform(0.0, 50.0);
    out.attack_ids.insert(out.points.Append(p));
  }
  return out;
}

}  // namespace

int main() {
  const TrafficData traffic = SynthesizeTraffic(/*normal=*/40000,
                                                /*attacks=*/60, /*seed=*/99);

  dod::DetectionParams params;
  params.radius = 1.5;      // behavioural similarity radius
  params.min_neighbors = 8; // a real service pattern has many look-alikes

  dod::DodConfig config = dod::DodConfig::Dmt(params);
  config.sampler.buckets_per_dim = 24;  // 3-d mini-bucket grid
  dod::DodPipeline pipeline(config);
  const dod::Result<dod::DodResult> run = pipeline.Run(traffic.points);
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const dod::DodResult& result = run.value();

  size_t recovered = 0, false_positives = 0;
  for (dod::PointId id : result.outliers) {
    if (traffic.attack_ids.contains(id)) {
      ++recovered;
    } else {
      ++false_positives;
    }
  }

  std::printf("connections: %zu (of which %zu injected attacks)\n",
              traffic.points.size(), traffic.attack_ids.size());
  std::printf("flagged outliers: %zu\n", result.outliers.size());
  std::printf("  attacks recovered: %zu / %zu (%.1f%% recall)\n", recovered,
              traffic.attack_ids.size(),
              100.0 * recovered / traffic.attack_ids.size());
  std::printf("  normal connections flagged: %zu (%.3f%% of traffic)\n",
              false_positives,
              100.0 * false_positives /
                  (traffic.points.size() - traffic.attack_ids.size()));
  std::printf("simulated end-to-end time: %.4fs over %zu partitions\n",
              result.breakdown.total(),
              result.plan.partition_plan.num_cells());
  return 0;
}
