// Copyright 2026 The DOD Authors.
//
// Framework generality (Sec. III-B): "This can be easily adapted to support
// other mining tasks that can take advantage of the supporting area
// partitioning strategy, such as density-based clustering."
//
// This example clusters an OSM-like region with DBSCAN twice — once with
// the centralized reference, once distributed on the DOD supporting-area
// framework — and shows that the clusterings agree while the distributed
// version processes partitions independently.
//
//   build/examples/density_clustering

#include <cstdio>
#include <map>
#include <set>

#include "common/timer.h"
#include "data/geo_like.h"
#include "extensions/dbscan.h"

int main() {
  const dod::Dataset data =
      dod::GenerateGeoRegion(dod::GeoRegion::kMassachusetts, 30000, 21);
  const dod::DbscanParams params{/*eps=*/4.0, /*min_pts=*/8};

  dod::StopWatch central_watch;
  const std::vector<int32_t> centralized = DbscanLabels(data, params);
  const double central_ms = central_watch.ElapsedMillis();

  dod::DistributedDbscanOptions options;
  options.target_partitions = 64;
  dod::StopWatch dist_watch;
  const dod::DistributedDbscanResult distributed =
      DistributedDbscan(data, params, options);
  const double dist_ms = dist_watch.ElapsedMillis();

  // Cluster-size histograms (top 5) and noise counts.
  auto summarize = [](const std::vector<int32_t>& labels) {
    std::map<int32_t, size_t> sizes;
    size_t noise = 0;
    for (int32_t label : labels) {
      if (label == dod::kDbscanNoise) {
        ++noise;
      } else {
        ++sizes[label];
      }
    }
    std::multiset<size_t, std::greater<size_t>> top;
    for (const auto& [label, size] : sizes) top.insert(size);
    return std::make_tuple(sizes.size(), noise, top);
  };

  const auto [c_clusters, c_noise, c_top] = summarize(centralized);
  const auto [d_clusters, d_noise, d_top] = summarize(distributed.labels);

  std::printf("points: %zu, eps=%g, minPts=%d\n", data.size(), params.eps,
              params.min_pts);
  std::printf("%-14s %10s %10s %28s %10s\n", "variant", "clusters", "noise",
              "largest clusters", "wall ms");
  auto print_row = [](const char* name, size_t clusters, size_t noise,
                      const std::multiset<size_t, std::greater<size_t>>& top,
                      double ms) {
    std::printf("%-14s %10zu %10zu     ", name, clusters, noise);
    int i = 0;
    for (size_t s : top) {
      if (i++ == 5) break;
      std::printf("%6zu", s);
    }
    std::printf(" %10.1f\n", ms);
  };
  print_row("centralized", c_clusters, c_noise, c_top, central_ms);
  print_row("distributed", d_clusters, d_noise, d_top, dist_ms);
  std::printf("\ncross-partition label merges performed: %zu\n",
              distributed.merges);

  // Noise sets are identical by construction of the supporting areas.
  size_t disagreements = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if ((centralized[i] == dod::kDbscanNoise) !=
        (distributed.labels[i] == dod::kDbscanNoise)) {
      ++disagreements;
    }
  }
  std::printf("noise-verdict disagreements: %zu (must be 0)\n",
              disagreements);
  return disagreements == 0 ? 0 : 1;
}
