// Copyright 2026 The DOD Authors.
//
// Algorithm advisor — the Sec. IV observations as an interactive tool.
// Sweeps data density and shows, side by side, what the theoretical cost
// models (Lemmas 4.1/4.2, Corollary 4.3) predict and what actually measured
// execution finds. The crossover structure (Cell-Based wins at both
// extremes, Nested-Loop in the middle) is the foundation of the
// multi-tactic design.
//
//   build/examples/algorithm_advisor

#include <cstdio>
#include <memory>

#include "common/timer.h"
#include "data/generators.h"
#include "detection/cost_model.h"
#include "detection/detector.h"

int main() {
  const size_t n = 10000;
  dod::DetectionParams params;
  params.radius = 5.0;
  params.min_neighbors = 4;

  const std::unique_ptr<dod::Detector> nested_loop =
      dod::MakeDetector(dod::AlgorithmKind::kNestedLoop);
  const std::unique_ptr<dod::Detector> cell_based =
      dod::MakeDetector(dod::AlgorithmKind::kCellBased);

  std::printf("%10s | %12s %12s | %12s %12s | %10s %10s\n", "density",
              "NL model", "CB model", "NL ms", "CB ms", "predicted",
              "measured");
  const double densities[] = {0.005, 0.01, 0.02, 0.04, 0.08,
                              0.16,  0.32, 0.64, 1.28, 2.56};
  for (double density : densities) {
    const dod::Rect domain = dod::DomainForDensity(n, density);
    const dod::Dataset data = dod::GenerateUniform(n, domain, /*seed=*/5);

    dod::PartitionStats stats{n, domain.Area(), 2};
    const double nl_model = dod::NestedLoopCost(stats, params);
    const double cb_model = dod::CellBasedCost(stats, params);
    const dod::AlgorithmKind predicted = dod::SelectAlgorithm(stats, params);

    dod::StopWatch nl_watch;
    nested_loop->DetectOutliers(data, data.size(), params);
    const double nl_ms = nl_watch.ElapsedMillis();
    dod::StopWatch cb_watch;
    cell_based->DetectOutliers(data, data.size(), params);
    const double cb_ms = cb_watch.ElapsedMillis();

    std::printf("%10.3f | %12.3g %12.3g | %12.2f %12.2f | %10s %10s\n",
                density, nl_model, cb_model, nl_ms, cb_ms,
                dod::AlgorithmKindName(predicted),
                nl_ms < cb_ms ? "Nested-Loop" : "Cell-Based");
  }
  std::printf(
      "\nCell-Based should win at the sparse and dense extremes and lose in\n"
      "the middle — and the model's prediction should track the measured\n"
      "winner (the Fig. 5 crossover).\n");
  return 0;
}
