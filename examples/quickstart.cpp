// Copyright 2026 The DOD Authors.
//
// Quickstart: detect distance-threshold outliers in a clustered 2-d dataset
// with the full multi-tactic DOD pipeline, and inspect the plan it built.
//
//   build/examples/quickstart

#include <cstdio>

#include "core/pipeline.h"
#include "data/generators.h"

int main() {
  // 1. Some data: 20k points clustered into "cities" over a sparse
  //    background, so densities vary wildly across the domain.
  dod::SettlementProfile profile;
  profile.num_cities = 8;
  profile.city_fraction = 0.8;
  const dod::Dataset data = dod::GenerateSettlements(
      20000, dod::DomainForDensity(20000, 0.05), profile, /*seed=*/42);

  // 2. The outlier definition (Def. 2.2): a point is an outlier iff fewer
  //    than k=4 neighbors lie within distance r=5.
  dod::DetectionParams params;
  params.radius = 5.0;
  params.min_neighbors = 4;

  // 3. Run the multi-tactic pipeline: sampling, DSHC partitioning,
  //    per-partition algorithm selection, cost-based reducer allocation,
  //    and the single-pass detection job. Run() returns a Result: a job
  //    whose tasks exhaust their retry budget reports an error instead of
  //    aborting the process.
  dod::DodPipeline pipeline(dod::DodConfig::Dmt(params));
  const dod::Result<dod::DodResult> run = pipeline.Run(data);
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const dod::DodResult& result = run.value();

  std::printf("dataset: %zu points in %s\n", data.size(),
              data.Bounds().ToString().c_str());
  std::printf("outliers found: %zu\n", result.outliers.size());
  for (size_t i = 0; i < result.outliers.size() && i < 5; ++i) {
    std::printf("  e.g. point #%u at %s\n", result.outliers[i],
                data.GetPoint(result.outliers[i]).ToString().c_str());
  }

  // 4. What the planner decided.
  const dod::MultiTacticPlan& plan = result.plan;
  size_t nested_loop = 0, cell_based = 0;
  for (dod::AlgorithmKind kind : plan.algorithm_plan) {
    (kind == dod::AlgorithmKind::kNestedLoop ? nested_loop : cell_based)++;
  }
  std::printf("plan: %zu partitions (%zu Nested-Loop, %zu Cell-Based)\n",
              plan.partition_plan.num_cells(), nested_loop, cell_based);
  std::printf("simulated cluster time: preprocess %.4fs + map %.4fs + "
              "shuffle %.4fs + reduce %.4fs = %.4fs\n",
              result.breakdown.preprocess_seconds,
              result.breakdown.detect.map_seconds,
              result.breakdown.detect.shuffle_seconds,
              result.breakdown.detect.reduce_seconds,
              result.breakdown.total());
  return 0;
}
