# Empty compiler generated dependencies file for intrusion_detection.
# This may be replaced when dependencies are built.
