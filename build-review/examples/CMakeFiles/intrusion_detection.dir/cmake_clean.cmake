file(REMOVE_RECURSE
  "CMakeFiles/intrusion_detection.dir/intrusion_detection.cpp.o"
  "CMakeFiles/intrusion_detection.dir/intrusion_detection.cpp.o.d"
  "intrusion_detection"
  "intrusion_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intrusion_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
