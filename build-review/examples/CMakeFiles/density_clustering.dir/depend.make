# Empty dependencies file for density_clustering.
# This may be replaced when dependencies are built.
