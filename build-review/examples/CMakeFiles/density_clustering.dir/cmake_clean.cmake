file(REMOVE_RECURSE
  "CMakeFiles/density_clustering.dir/density_clustering.cpp.o"
  "CMakeFiles/density_clustering.dir/density_clustering.cpp.o.d"
  "density_clustering"
  "density_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/density_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
