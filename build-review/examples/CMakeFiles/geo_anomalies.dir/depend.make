# Empty dependencies file for geo_anomalies.
# This may be replaced when dependencies are built.
