file(REMOVE_RECURSE
  "CMakeFiles/geo_anomalies.dir/geo_anomalies.cpp.o"
  "CMakeFiles/geo_anomalies.dir/geo_anomalies.cpp.o.d"
  "geo_anomalies"
  "geo_anomalies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_anomalies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
