# Empty compiler generated dependencies file for validate_trace.
# This may be replaced when dependencies are built.
