file(REMOVE_RECURSE
  "CMakeFiles/validate_trace.dir/validate_trace.cc.o"
  "CMakeFiles/validate_trace.dir/validate_trace.cc.o.d"
  "validate_trace"
  "validate_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
