file(REMOVE_RECURSE
  "CMakeFiles/dod_cli.dir/dod_cli.cc.o"
  "CMakeFiles/dod_cli.dir/dod_cli.cc.o.d"
  "dod_cli"
  "dod_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dod_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
