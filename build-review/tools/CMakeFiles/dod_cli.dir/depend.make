# Empty dependencies file for dod_cli.
# This may be replaced when dependencies are built.
