file(REMOVE_RECURSE
  "CMakeFiles/bisect_test.dir/bisect_test.cc.o"
  "CMakeFiles/bisect_test.dir/bisect_test.cc.o.d"
  "bisect_test"
  "bisect_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bisect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
