file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerance_test.dir/fault_tolerance_test.cc.o"
  "CMakeFiles/fault_tolerance_test.dir/fault_tolerance_test.cc.o.d"
  "fault_tolerance_test"
  "fault_tolerance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
