file(REMOVE_RECURSE
  "CMakeFiles/minibucket_test.dir/minibucket_test.cc.o"
  "CMakeFiles/minibucket_test.dir/minibucket_test.cc.o.d"
  "minibucket_test"
  "minibucket_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minibucket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
