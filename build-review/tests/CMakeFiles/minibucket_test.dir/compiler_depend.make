# Empty compiler generated dependencies file for minibucket_test.
# This may be replaced when dependencies are built.
