# Empty compiler generated dependencies file for af_tree_fuzz_test.
# This may be replaced when dependencies are built.
