file(REMOVE_RECURSE
  "CMakeFiles/af_tree_fuzz_test.dir/af_tree_fuzz_test.cc.o"
  "CMakeFiles/af_tree_fuzz_test.dir/af_tree_fuzz_test.cc.o.d"
  "af_tree_fuzz_test"
  "af_tree_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/af_tree_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
