file(REMOVE_RECURSE
  "CMakeFiles/bin_packing_test.dir/bin_packing_test.cc.o"
  "CMakeFiles/bin_packing_test.dir/bin_packing_test.cc.o.d"
  "bin_packing_test"
  "bin_packing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bin_packing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
