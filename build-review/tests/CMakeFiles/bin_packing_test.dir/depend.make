# Empty dependencies file for bin_packing_test.
# This may be replaced when dependencies are built.
