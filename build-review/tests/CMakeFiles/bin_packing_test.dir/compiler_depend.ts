# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bin_packing_test.
