# Empty compiler generated dependencies file for af_tree_test.
# This may be replaced when dependencies are built.
