file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_job_test.dir/mapreduce_job_test.cc.o"
  "CMakeFiles/mapreduce_job_test.dir/mapreduce_job_test.cc.o.d"
  "mapreduce_job_test"
  "mapreduce_job_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_job_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
