# Empty compiler generated dependencies file for mapreduce_job_test.
# This may be replaced when dependencies are built.
