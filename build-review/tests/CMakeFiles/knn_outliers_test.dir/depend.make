# Empty dependencies file for knn_outliers_test.
# This may be replaced when dependencies are built.
