file(REMOVE_RECURSE
  "CMakeFiles/knn_outliers_test.dir/knn_outliers_test.cc.o"
  "CMakeFiles/knn_outliers_test.dir/knn_outliers_test.cc.o.d"
  "knn_outliers_test"
  "knn_outliers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_outliers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
