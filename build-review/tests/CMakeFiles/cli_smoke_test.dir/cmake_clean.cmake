file(REMOVE_RECURSE
  "CMakeFiles/cli_smoke_test.dir/cli_smoke_test.cc.o"
  "CMakeFiles/cli_smoke_test.dir/cli_smoke_test.cc.o.d"
  "cli_smoke_test"
  "cli_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
