# Empty compiler generated dependencies file for mapreduce_extras_test.
# This may be replaced when dependencies are built.
