file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_extras_test.dir/mapreduce_extras_test.cc.o"
  "CMakeFiles/mapreduce_extras_test.dir/mapreduce_extras_test.cc.o.d"
  "mapreduce_extras_test"
  "mapreduce_extras_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
