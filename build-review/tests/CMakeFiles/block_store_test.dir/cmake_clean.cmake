file(REMOVE_RECURSE
  "CMakeFiles/block_store_test.dir/block_store_test.cc.o"
  "CMakeFiles/block_store_test.dir/block_store_test.cc.o.d"
  "block_store_test"
  "block_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
