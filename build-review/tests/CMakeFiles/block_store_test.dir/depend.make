# Empty dependencies file for block_store_test.
# This may be replaced when dependencies are built.
