file(REMOVE_RECURSE
  "CMakeFiles/dshc_test.dir/dshc_test.cc.o"
  "CMakeFiles/dshc_test.dir/dshc_test.cc.o.d"
  "dshc_test"
  "dshc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dshc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
