# Empty dependencies file for dshc_test.
# This may be replaced when dependencies are built.
