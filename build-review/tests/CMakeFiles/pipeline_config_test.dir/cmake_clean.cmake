file(REMOVE_RECURSE
  "CMakeFiles/pipeline_config_test.dir/pipeline_config_test.cc.o"
  "CMakeFiles/pipeline_config_test.dir/pipeline_config_test.cc.o.d"
  "pipeline_config_test"
  "pipeline_config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
