# Empty dependencies file for pipeline_config_test.
# This may be replaced when dependencies are built.
