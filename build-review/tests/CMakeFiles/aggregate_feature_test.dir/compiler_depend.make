# Empty compiler generated dependencies file for aggregate_feature_test.
# This may be replaced when dependencies are built.
