file(REMOVE_RECURSE
  "CMakeFiles/aggregate_feature_test.dir/aggregate_feature_test.cc.o"
  "CMakeFiles/aggregate_feature_test.dir/aggregate_feature_test.cc.o.d"
  "aggregate_feature_test"
  "aggregate_feature_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_feature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
