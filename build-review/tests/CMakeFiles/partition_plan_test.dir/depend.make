# Empty dependencies file for partition_plan_test.
# This may be replaced when dependencies are built.
