file(REMOVE_RECURSE
  "CMakeFiles/partition_plan_test.dir/partition_plan_test.cc.o"
  "CMakeFiles/partition_plan_test.dir/partition_plan_test.cc.o.d"
  "partition_plan_test"
  "partition_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
