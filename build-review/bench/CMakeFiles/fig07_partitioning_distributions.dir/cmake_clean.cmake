file(REMOVE_RECURSE
  "CMakeFiles/fig07_partitioning_distributions.dir/fig07_partitioning_distributions.cc.o"
  "CMakeFiles/fig07_partitioning_distributions.dir/fig07_partitioning_distributions.cc.o.d"
  "fig07_partitioning_distributions"
  "fig07_partitioning_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_partitioning_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
