# Empty compiler generated dependencies file for fig07_partitioning_distributions.
# This may be replaced when dependencies are built.
