file(REMOVE_RECURSE
  "CMakeFiles/fig04_density_sensitivity.dir/fig04_density_sensitivity.cc.o"
  "CMakeFiles/fig04_density_sensitivity.dir/fig04_density_sensitivity.cc.o.d"
  "fig04_density_sensitivity"
  "fig04_density_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_density_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
