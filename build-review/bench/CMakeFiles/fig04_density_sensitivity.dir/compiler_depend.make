# Empty compiler generated dependencies file for fig04_density_sensitivity.
# This may be replaced when dependencies are built.
