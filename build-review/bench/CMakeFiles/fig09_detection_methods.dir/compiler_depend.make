# Empty compiler generated dependencies file for fig09_detection_methods.
# This may be replaced when dependencies are built.
