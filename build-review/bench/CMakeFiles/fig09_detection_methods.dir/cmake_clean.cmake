file(REMOVE_RECURSE
  "CMakeFiles/fig09_detection_methods.dir/fig09_detection_methods.cc.o"
  "CMakeFiles/fig09_detection_methods.dir/fig09_detection_methods.cc.o.d"
  "fig09_detection_methods"
  "fig09_detection_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_detection_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
