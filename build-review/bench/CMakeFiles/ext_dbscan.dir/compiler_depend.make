# Empty compiler generated dependencies file for ext_dbscan.
# This may be replaced when dependencies are built.
