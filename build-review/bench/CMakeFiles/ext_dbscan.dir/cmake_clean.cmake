file(REMOVE_RECURSE
  "CMakeFiles/ext_dbscan.dir/ext_dbscan.cc.o"
  "CMakeFiles/ext_dbscan.dir/ext_dbscan.cc.o.d"
  "ext_dbscan"
  "ext_dbscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
