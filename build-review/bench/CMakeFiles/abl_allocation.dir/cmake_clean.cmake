file(REMOVE_RECURSE
  "CMakeFiles/abl_allocation.dir/abl_allocation.cc.o"
  "CMakeFiles/abl_allocation.dir/abl_allocation.cc.o.d"
  "abl_allocation"
  "abl_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
