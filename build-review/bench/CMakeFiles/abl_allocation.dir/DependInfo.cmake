
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_allocation.cc" "bench/CMakeFiles/abl_allocation.dir/abl_allocation.cc.o" "gcc" "bench/CMakeFiles/abl_allocation.dir/abl_allocation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/bench/CMakeFiles/dod_bench_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/dod_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/alloc/CMakeFiles/dod_alloc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dshc/CMakeFiles/dod_dshc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/extensions/CMakeFiles/dod_extensions.dir/DependInfo.cmake"
  "/root/repo/build-review/src/io/CMakeFiles/dod_io.dir/DependInfo.cmake"
  "/root/repo/build-review/src/partition/CMakeFiles/dod_partition.dir/DependInfo.cmake"
  "/root/repo/build-review/src/detection/CMakeFiles/dod_detection.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mapreduce/CMakeFiles/dod_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build-review/src/runtime/CMakeFiles/dod_runtime.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kernels/CMakeFiles/dod_kernels.dir/DependInfo.cmake"
  "/root/repo/build-review/src/observability/CMakeFiles/dod_observability.dir/DependInfo.cmake"
  "/root/repo/build-review/src/data/CMakeFiles/dod_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/dod_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
