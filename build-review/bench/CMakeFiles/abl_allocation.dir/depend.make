# Empty dependencies file for abl_allocation.
# This may be replaced when dependencies are built.
