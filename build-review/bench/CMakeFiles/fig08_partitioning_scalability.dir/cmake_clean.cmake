file(REMOVE_RECURSE
  "CMakeFiles/fig08_partitioning_scalability.dir/fig08_partitioning_scalability.cc.o"
  "CMakeFiles/fig08_partitioning_scalability.dir/fig08_partitioning_scalability.cc.o.d"
  "fig08_partitioning_scalability"
  "fig08_partitioning_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_partitioning_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
