# Empty dependencies file for fig08_partitioning_scalability.
# This may be replaced when dependencies are built.
