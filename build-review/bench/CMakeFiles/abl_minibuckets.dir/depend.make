# Empty dependencies file for abl_minibuckets.
# This may be replaced when dependencies are built.
