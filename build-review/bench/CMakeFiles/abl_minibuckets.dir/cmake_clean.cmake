file(REMOVE_RECURSE
  "CMakeFiles/abl_minibuckets.dir/abl_minibuckets.cc.o"
  "CMakeFiles/abl_minibuckets.dir/abl_minibuckets.cc.o.d"
  "abl_minibuckets"
  "abl_minibuckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_minibuckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
