file(REMOVE_RECURSE
  "CMakeFiles/dod_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/dod_bench_util.dir/bench_util.cc.o.d"
  "libdod_bench_util.a"
  "libdod_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dod_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
