file(REMOVE_RECURSE
  "libdod_bench_util.a"
)
