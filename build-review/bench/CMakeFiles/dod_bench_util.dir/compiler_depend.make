# Empty compiler generated dependencies file for dod_bench_util.
# This may be replaced when dependencies are built.
