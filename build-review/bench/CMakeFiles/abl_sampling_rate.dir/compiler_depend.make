# Empty compiler generated dependencies file for abl_sampling_rate.
# This may be replaced when dependencies are built.
