file(REMOVE_RECURSE
  "CMakeFiles/abl_sampling_rate.dir/abl_sampling_rate.cc.o"
  "CMakeFiles/abl_sampling_rate.dir/abl_sampling_rate.cc.o.d"
  "abl_sampling_rate"
  "abl_sampling_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sampling_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
