# Empty compiler generated dependencies file for fig10_breakdown.
# This may be replaced when dependencies are built.
