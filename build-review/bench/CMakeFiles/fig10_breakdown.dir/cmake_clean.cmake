file(REMOVE_RECURSE
  "CMakeFiles/fig10_breakdown.dir/fig10_breakdown.cc.o"
  "CMakeFiles/fig10_breakdown.dir/fig10_breakdown.cc.o.d"
  "fig10_breakdown"
  "fig10_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
