file(REMOVE_RECURSE
  "CMakeFiles/fig05_algorithm_crossover.dir/fig05_algorithm_crossover.cc.o"
  "CMakeFiles/fig05_algorithm_crossover.dir/fig05_algorithm_crossover.cc.o.d"
  "fig05_algorithm_crossover"
  "fig05_algorithm_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_algorithm_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
