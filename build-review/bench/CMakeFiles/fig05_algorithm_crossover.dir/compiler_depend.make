# Empty compiler generated dependencies file for fig05_algorithm_crossover.
# This may be replaced when dependencies are built.
