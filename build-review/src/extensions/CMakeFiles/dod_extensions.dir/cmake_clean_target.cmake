file(REMOVE_RECURSE
  "libdod_extensions.a"
)
