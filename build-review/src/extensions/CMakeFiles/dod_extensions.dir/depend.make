# Empty dependencies file for dod_extensions.
# This may be replaced when dependencies are built.
