file(REMOVE_RECURSE
  "CMakeFiles/dod_extensions.dir/dbscan.cc.o"
  "CMakeFiles/dod_extensions.dir/dbscan.cc.o.d"
  "CMakeFiles/dod_extensions.dir/knn_outliers.cc.o"
  "CMakeFiles/dod_extensions.dir/knn_outliers.cc.o.d"
  "libdod_extensions.a"
  "libdod_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dod_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
