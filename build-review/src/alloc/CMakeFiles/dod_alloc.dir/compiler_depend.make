# Empty compiler generated dependencies file for dod_alloc.
# This may be replaced when dependencies are built.
