file(REMOVE_RECURSE
  "libdod_alloc.a"
)
