file(REMOVE_RECURSE
  "CMakeFiles/dod_alloc.dir/bin_packing.cc.o"
  "CMakeFiles/dod_alloc.dir/bin_packing.cc.o.d"
  "libdod_alloc.a"
  "libdod_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dod_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
