
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dshc/af_tree.cc" "src/dshc/CMakeFiles/dod_dshc.dir/af_tree.cc.o" "gcc" "src/dshc/CMakeFiles/dod_dshc.dir/af_tree.cc.o.d"
  "/root/repo/src/dshc/aggregate_feature.cc" "src/dshc/CMakeFiles/dod_dshc.dir/aggregate_feature.cc.o" "gcc" "src/dshc/CMakeFiles/dod_dshc.dir/aggregate_feature.cc.o.d"
  "/root/repo/src/dshc/dshc.cc" "src/dshc/CMakeFiles/dod_dshc.dir/dshc.cc.o" "gcc" "src/dshc/CMakeFiles/dod_dshc.dir/dshc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/dod_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/partition/CMakeFiles/dod_partition.dir/DependInfo.cmake"
  "/root/repo/build-review/src/detection/CMakeFiles/dod_detection.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kernels/CMakeFiles/dod_kernels.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mapreduce/CMakeFiles/dod_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build-review/src/observability/CMakeFiles/dod_observability.dir/DependInfo.cmake"
  "/root/repo/build-review/src/runtime/CMakeFiles/dod_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
