# Empty compiler generated dependencies file for dod_dshc.
# This may be replaced when dependencies are built.
