file(REMOVE_RECURSE
  "CMakeFiles/dod_dshc.dir/af_tree.cc.o"
  "CMakeFiles/dod_dshc.dir/af_tree.cc.o.d"
  "CMakeFiles/dod_dshc.dir/aggregate_feature.cc.o"
  "CMakeFiles/dod_dshc.dir/aggregate_feature.cc.o.d"
  "CMakeFiles/dod_dshc.dir/dshc.cc.o"
  "CMakeFiles/dod_dshc.dir/dshc.cc.o.d"
  "libdod_dshc.a"
  "libdod_dshc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dod_dshc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
