file(REMOVE_RECURSE
  "libdod_dshc.a"
)
