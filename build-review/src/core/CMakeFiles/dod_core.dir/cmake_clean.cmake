file(REMOVE_RECURSE
  "CMakeFiles/dod_core.dir/config.cc.o"
  "CMakeFiles/dod_core.dir/config.cc.o.d"
  "CMakeFiles/dod_core.dir/evaluation.cc.o"
  "CMakeFiles/dod_core.dir/evaluation.cc.o.d"
  "CMakeFiles/dod_core.dir/parameter_advisor.cc.o"
  "CMakeFiles/dod_core.dir/parameter_advisor.cc.o.d"
  "CMakeFiles/dod_core.dir/pipeline.cc.o"
  "CMakeFiles/dod_core.dir/pipeline.cc.o.d"
  "CMakeFiles/dod_core.dir/plan.cc.o"
  "CMakeFiles/dod_core.dir/plan.cc.o.d"
  "CMakeFiles/dod_core.dir/plan_io.cc.o"
  "CMakeFiles/dod_core.dir/plan_io.cc.o.d"
  "CMakeFiles/dod_core.dir/report.cc.o"
  "CMakeFiles/dod_core.dir/report.cc.o.d"
  "libdod_core.a"
  "libdod_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dod_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
