# Empty dependencies file for dod_core.
# This may be replaced when dependencies are built.
