file(REMOVE_RECURSE
  "libdod_core.a"
)
