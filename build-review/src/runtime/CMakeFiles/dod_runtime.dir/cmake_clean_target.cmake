file(REMOVE_RECURSE
  "libdod_runtime.a"
)
