# Empty compiler generated dependencies file for dod_runtime.
# This may be replaced when dependencies are built.
