file(REMOVE_RECURSE
  "CMakeFiles/dod_runtime.dir/parallel_executor.cc.o"
  "CMakeFiles/dod_runtime.dir/parallel_executor.cc.o.d"
  "CMakeFiles/dod_runtime.dir/thread_pool.cc.o"
  "CMakeFiles/dod_runtime.dir/thread_pool.cc.o.d"
  "libdod_runtime.a"
  "libdod_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dod_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
