# Empty compiler generated dependencies file for dod_kernels.
# This may be replaced when dependencies are built.
