
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/distance_kernels.cc" "src/kernels/CMakeFiles/dod_kernels.dir/distance_kernels.cc.o" "gcc" "src/kernels/CMakeFiles/dod_kernels.dir/distance_kernels.cc.o.d"
  "/root/repo/src/kernels/distance_kernels_avx2.cc" "src/kernels/CMakeFiles/dod_kernels.dir/distance_kernels_avx2.cc.o" "gcc" "src/kernels/CMakeFiles/dod_kernels.dir/distance_kernels_avx2.cc.o.d"
  "/root/repo/src/kernels/soa_block.cc" "src/kernels/CMakeFiles/dod_kernels.dir/soa_block.cc.o" "gcc" "src/kernels/CMakeFiles/dod_kernels.dir/soa_block.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/dod_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/observability/CMakeFiles/dod_observability.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
