file(REMOVE_RECURSE
  "libdod_kernels.a"
)
