file(REMOVE_RECURSE
  "CMakeFiles/dod_kernels.dir/distance_kernels.cc.o"
  "CMakeFiles/dod_kernels.dir/distance_kernels.cc.o.d"
  "CMakeFiles/dod_kernels.dir/distance_kernels_avx2.cc.o"
  "CMakeFiles/dod_kernels.dir/distance_kernels_avx2.cc.o.d"
  "CMakeFiles/dod_kernels.dir/soa_block.cc.o"
  "CMakeFiles/dod_kernels.dir/soa_block.cc.o.d"
  "libdod_kernels.a"
  "libdod_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dod_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
