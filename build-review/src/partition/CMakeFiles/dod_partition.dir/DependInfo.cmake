
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/bisect.cc" "src/partition/CMakeFiles/dod_partition.dir/bisect.cc.o" "gcc" "src/partition/CMakeFiles/dod_partition.dir/bisect.cc.o.d"
  "/root/repo/src/partition/minibucket.cc" "src/partition/CMakeFiles/dod_partition.dir/minibucket.cc.o" "gcc" "src/partition/CMakeFiles/dod_partition.dir/minibucket.cc.o.d"
  "/root/repo/src/partition/partition_plan.cc" "src/partition/CMakeFiles/dod_partition.dir/partition_plan.cc.o" "gcc" "src/partition/CMakeFiles/dod_partition.dir/partition_plan.cc.o.d"
  "/root/repo/src/partition/sampler.cc" "src/partition/CMakeFiles/dod_partition.dir/sampler.cc.o" "gcc" "src/partition/CMakeFiles/dod_partition.dir/sampler.cc.o.d"
  "/root/repo/src/partition/strategies.cc" "src/partition/CMakeFiles/dod_partition.dir/strategies.cc.o" "gcc" "src/partition/CMakeFiles/dod_partition.dir/strategies.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/dod_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/detection/CMakeFiles/dod_detection.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kernels/CMakeFiles/dod_kernels.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mapreduce/CMakeFiles/dod_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build-review/src/observability/CMakeFiles/dod_observability.dir/DependInfo.cmake"
  "/root/repo/build-review/src/runtime/CMakeFiles/dod_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
