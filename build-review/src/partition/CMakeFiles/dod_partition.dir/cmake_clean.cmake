file(REMOVE_RECURSE
  "CMakeFiles/dod_partition.dir/bisect.cc.o"
  "CMakeFiles/dod_partition.dir/bisect.cc.o.d"
  "CMakeFiles/dod_partition.dir/minibucket.cc.o"
  "CMakeFiles/dod_partition.dir/minibucket.cc.o.d"
  "CMakeFiles/dod_partition.dir/partition_plan.cc.o"
  "CMakeFiles/dod_partition.dir/partition_plan.cc.o.d"
  "CMakeFiles/dod_partition.dir/sampler.cc.o"
  "CMakeFiles/dod_partition.dir/sampler.cc.o.d"
  "CMakeFiles/dod_partition.dir/strategies.cc.o"
  "CMakeFiles/dod_partition.dir/strategies.cc.o.d"
  "libdod_partition.a"
  "libdod_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dod_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
