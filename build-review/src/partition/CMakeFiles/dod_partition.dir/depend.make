# Empty dependencies file for dod_partition.
# This may be replaced when dependencies are built.
