file(REMOVE_RECURSE
  "libdod_partition.a"
)
