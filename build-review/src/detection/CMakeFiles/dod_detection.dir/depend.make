# Empty dependencies file for dod_detection.
# This may be replaced when dependencies are built.
