file(REMOVE_RECURSE
  "CMakeFiles/dod_detection.dir/brute_force.cc.o"
  "CMakeFiles/dod_detection.dir/brute_force.cc.o.d"
  "CMakeFiles/dod_detection.dir/cell_based.cc.o"
  "CMakeFiles/dod_detection.dir/cell_based.cc.o.d"
  "CMakeFiles/dod_detection.dir/cost_model.cc.o"
  "CMakeFiles/dod_detection.dir/cost_model.cc.o.d"
  "CMakeFiles/dod_detection.dir/detector.cc.o"
  "CMakeFiles/dod_detection.dir/detector.cc.o.d"
  "CMakeFiles/dod_detection.dir/grid.cc.o"
  "CMakeFiles/dod_detection.dir/grid.cc.o.d"
  "CMakeFiles/dod_detection.dir/nested_loop.cc.o"
  "CMakeFiles/dod_detection.dir/nested_loop.cc.o.d"
  "CMakeFiles/dod_detection.dir/pivot.cc.o"
  "CMakeFiles/dod_detection.dir/pivot.cc.o.d"
  "libdod_detection.a"
  "libdod_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dod_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
