file(REMOVE_RECURSE
  "libdod_detection.a"
)
