
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detection/brute_force.cc" "src/detection/CMakeFiles/dod_detection.dir/brute_force.cc.o" "gcc" "src/detection/CMakeFiles/dod_detection.dir/brute_force.cc.o.d"
  "/root/repo/src/detection/cell_based.cc" "src/detection/CMakeFiles/dod_detection.dir/cell_based.cc.o" "gcc" "src/detection/CMakeFiles/dod_detection.dir/cell_based.cc.o.d"
  "/root/repo/src/detection/cost_model.cc" "src/detection/CMakeFiles/dod_detection.dir/cost_model.cc.o" "gcc" "src/detection/CMakeFiles/dod_detection.dir/cost_model.cc.o.d"
  "/root/repo/src/detection/detector.cc" "src/detection/CMakeFiles/dod_detection.dir/detector.cc.o" "gcc" "src/detection/CMakeFiles/dod_detection.dir/detector.cc.o.d"
  "/root/repo/src/detection/grid.cc" "src/detection/CMakeFiles/dod_detection.dir/grid.cc.o" "gcc" "src/detection/CMakeFiles/dod_detection.dir/grid.cc.o.d"
  "/root/repo/src/detection/nested_loop.cc" "src/detection/CMakeFiles/dod_detection.dir/nested_loop.cc.o" "gcc" "src/detection/CMakeFiles/dod_detection.dir/nested_loop.cc.o.d"
  "/root/repo/src/detection/pivot.cc" "src/detection/CMakeFiles/dod_detection.dir/pivot.cc.o" "gcc" "src/detection/CMakeFiles/dod_detection.dir/pivot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/dod_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kernels/CMakeFiles/dod_kernels.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mapreduce/CMakeFiles/dod_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build-review/src/observability/CMakeFiles/dod_observability.dir/DependInfo.cmake"
  "/root/repo/build-review/src/runtime/CMakeFiles/dod_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
