# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("observability")
subdirs("kernels")
subdirs("runtime")
subdirs("io")
subdirs("mapreduce")
subdirs("detection")
subdirs("partition")
subdirs("dshc")
subdirs("alloc")
subdirs("data")
subdirs("core")
subdirs("extensions")
