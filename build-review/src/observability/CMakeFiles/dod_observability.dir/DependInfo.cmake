
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/observability/json.cc" "src/observability/CMakeFiles/dod_observability.dir/json.cc.o" "gcc" "src/observability/CMakeFiles/dod_observability.dir/json.cc.o.d"
  "/root/repo/src/observability/metrics.cc" "src/observability/CMakeFiles/dod_observability.dir/metrics.cc.o" "gcc" "src/observability/CMakeFiles/dod_observability.dir/metrics.cc.o.d"
  "/root/repo/src/observability/profile.cc" "src/observability/CMakeFiles/dod_observability.dir/profile.cc.o" "gcc" "src/observability/CMakeFiles/dod_observability.dir/profile.cc.o.d"
  "/root/repo/src/observability/trace.cc" "src/observability/CMakeFiles/dod_observability.dir/trace.cc.o" "gcc" "src/observability/CMakeFiles/dod_observability.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/dod_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
