file(REMOVE_RECURSE
  "CMakeFiles/dod_observability.dir/json.cc.o"
  "CMakeFiles/dod_observability.dir/json.cc.o.d"
  "CMakeFiles/dod_observability.dir/metrics.cc.o"
  "CMakeFiles/dod_observability.dir/metrics.cc.o.d"
  "CMakeFiles/dod_observability.dir/profile.cc.o"
  "CMakeFiles/dod_observability.dir/profile.cc.o.d"
  "CMakeFiles/dod_observability.dir/trace.cc.o"
  "CMakeFiles/dod_observability.dir/trace.cc.o.d"
  "libdod_observability.a"
  "libdod_observability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dod_observability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
