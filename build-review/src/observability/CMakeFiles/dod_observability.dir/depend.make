# Empty dependencies file for dod_observability.
# This may be replaced when dependencies are built.
