file(REMOVE_RECURSE
  "libdod_observability.a"
)
