
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapreduce/cluster.cc" "src/mapreduce/CMakeFiles/dod_mapreduce.dir/cluster.cc.o" "gcc" "src/mapreduce/CMakeFiles/dod_mapreduce.dir/cluster.cc.o.d"
  "/root/repo/src/mapreduce/fault_injection.cc" "src/mapreduce/CMakeFiles/dod_mapreduce.dir/fault_injection.cc.o" "gcc" "src/mapreduce/CMakeFiles/dod_mapreduce.dir/fault_injection.cc.o.d"
  "/root/repo/src/mapreduce/job_stats.cc" "src/mapreduce/CMakeFiles/dod_mapreduce.dir/job_stats.cc.o" "gcc" "src/mapreduce/CMakeFiles/dod_mapreduce.dir/job_stats.cc.o.d"
  "/root/repo/src/mapreduce/task_runner.cc" "src/mapreduce/CMakeFiles/dod_mapreduce.dir/task_runner.cc.o" "gcc" "src/mapreduce/CMakeFiles/dod_mapreduce.dir/task_runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/dod_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/observability/CMakeFiles/dod_observability.dir/DependInfo.cmake"
  "/root/repo/build-review/src/runtime/CMakeFiles/dod_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
