file(REMOVE_RECURSE
  "CMakeFiles/dod_mapreduce.dir/cluster.cc.o"
  "CMakeFiles/dod_mapreduce.dir/cluster.cc.o.d"
  "CMakeFiles/dod_mapreduce.dir/fault_injection.cc.o"
  "CMakeFiles/dod_mapreduce.dir/fault_injection.cc.o.d"
  "CMakeFiles/dod_mapreduce.dir/job_stats.cc.o"
  "CMakeFiles/dod_mapreduce.dir/job_stats.cc.o.d"
  "CMakeFiles/dod_mapreduce.dir/task_runner.cc.o"
  "CMakeFiles/dod_mapreduce.dir/task_runner.cc.o.d"
  "libdod_mapreduce.a"
  "libdod_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dod_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
