file(REMOVE_RECURSE
  "libdod_mapreduce.a"
)
