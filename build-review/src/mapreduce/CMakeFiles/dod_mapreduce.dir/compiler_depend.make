# Empty compiler generated dependencies file for dod_mapreduce.
# This may be replaced when dependencies are built.
