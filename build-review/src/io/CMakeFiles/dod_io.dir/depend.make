# Empty dependencies file for dod_io.
# This may be replaced when dependencies are built.
