file(REMOVE_RECURSE
  "libdod_io.a"
)
