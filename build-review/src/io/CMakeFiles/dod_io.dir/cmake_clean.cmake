file(REMOVE_RECURSE
  "CMakeFiles/dod_io.dir/binary.cc.o"
  "CMakeFiles/dod_io.dir/binary.cc.o.d"
  "CMakeFiles/dod_io.dir/block_store.cc.o"
  "CMakeFiles/dod_io.dir/block_store.cc.o.d"
  "CMakeFiles/dod_io.dir/csv.cc.o"
  "CMakeFiles/dod_io.dir/csv.cc.o.d"
  "libdod_io.a"
  "libdod_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dod_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
