file(REMOVE_RECURSE
  "libdod_common.a"
)
