file(REMOVE_RECURSE
  "CMakeFiles/dod_common.dir/bounds.cc.o"
  "CMakeFiles/dod_common.dir/bounds.cc.o.d"
  "CMakeFiles/dod_common.dir/dataset.cc.o"
  "CMakeFiles/dod_common.dir/dataset.cc.o.d"
  "CMakeFiles/dod_common.dir/flags.cc.o"
  "CMakeFiles/dod_common.dir/flags.cc.o.d"
  "CMakeFiles/dod_common.dir/logging.cc.o"
  "CMakeFiles/dod_common.dir/logging.cc.o.d"
  "CMakeFiles/dod_common.dir/point.cc.o"
  "CMakeFiles/dod_common.dir/point.cc.o.d"
  "CMakeFiles/dod_common.dir/random.cc.o"
  "CMakeFiles/dod_common.dir/random.cc.o.d"
  "CMakeFiles/dod_common.dir/stats.cc.o"
  "CMakeFiles/dod_common.dir/stats.cc.o.d"
  "CMakeFiles/dod_common.dir/status.cc.o"
  "CMakeFiles/dod_common.dir/status.cc.o.d"
  "libdod_common.a"
  "libdod_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dod_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
