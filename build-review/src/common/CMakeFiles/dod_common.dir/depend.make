# Empty dependencies file for dod_common.
# This may be replaced when dependencies are built.
