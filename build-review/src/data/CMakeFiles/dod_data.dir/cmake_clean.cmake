file(REMOVE_RECURSE
  "CMakeFiles/dod_data.dir/distort.cc.o"
  "CMakeFiles/dod_data.dir/distort.cc.o.d"
  "CMakeFiles/dod_data.dir/generators.cc.o"
  "CMakeFiles/dod_data.dir/generators.cc.o.d"
  "CMakeFiles/dod_data.dir/geo_like.cc.o"
  "CMakeFiles/dod_data.dir/geo_like.cc.o.d"
  "CMakeFiles/dod_data.dir/normalize.cc.o"
  "CMakeFiles/dod_data.dir/normalize.cc.o.d"
  "CMakeFiles/dod_data.dir/tiger_like.cc.o"
  "CMakeFiles/dod_data.dir/tiger_like.cc.o.d"
  "libdod_data.a"
  "libdod_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dod_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
