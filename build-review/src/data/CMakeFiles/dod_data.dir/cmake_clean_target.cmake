file(REMOVE_RECURSE
  "libdod_data.a"
)
