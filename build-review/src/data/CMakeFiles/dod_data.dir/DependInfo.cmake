
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/distort.cc" "src/data/CMakeFiles/dod_data.dir/distort.cc.o" "gcc" "src/data/CMakeFiles/dod_data.dir/distort.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/data/CMakeFiles/dod_data.dir/generators.cc.o" "gcc" "src/data/CMakeFiles/dod_data.dir/generators.cc.o.d"
  "/root/repo/src/data/geo_like.cc" "src/data/CMakeFiles/dod_data.dir/geo_like.cc.o" "gcc" "src/data/CMakeFiles/dod_data.dir/geo_like.cc.o.d"
  "/root/repo/src/data/normalize.cc" "src/data/CMakeFiles/dod_data.dir/normalize.cc.o" "gcc" "src/data/CMakeFiles/dod_data.dir/normalize.cc.o.d"
  "/root/repo/src/data/tiger_like.cc" "src/data/CMakeFiles/dod_data.dir/tiger_like.cc.o" "gcc" "src/data/CMakeFiles/dod_data.dir/tiger_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/dod_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
