# Empty compiler generated dependencies file for dod_data.
# This may be replaced when dependencies are built.
