// Copyright 2026 The DOD Authors.
//
// dod_cli — run distance-threshold outlier detection on a CSV file or a
// generated workload, with full control over the pipeline.
//
// Examples:
//   dod_cli --generate region:MA --n 30000 --radius 5 --k 4
//   dod_cli --input buildings.csv --columns 2,3 --radius 0.01 --k 10 \
//           --strategy cdriven --algorithm cell_based --out outliers.csv
//   dod_cli --generate tiger --n 50000 --plan-out plan.txt --verbose

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/flags.h"
#include "core/pipeline.h"
#include "core/plan_io.h"
#include "core/report.h"
#include "data/generators.h"
#include "data/geo_like.h"
#include "data/tiger_like.h"
#include "core/parameter_advisor.h"
#include "io/binary.h"
#include "io/csv.h"
#include "kernels/kernel_mode.h"
#include "observability/metrics.h"
#include "observability/profile.h"
#include "observability/trace.h"

namespace {

constexpr const char* kUsage = R"(dod_cli — distributed distance-based outlier detection

Input (one of):
  --input PATH           CSV file of points
  --columns I,J,...      zero-based coordinate columns (default: all)
  --delimiter C          field delimiter (default ',')
  --skip-rows N          header rows to skip
  --generate KIND        synthetic data: uniform | region:OH|MA|CA|NY |
                         tiger | hierarchical:MA|NE|US|Planet
  --n N                  generated points (default 30000)
  --density D            mean density for --generate uniform (default 0.05)

Outlier definition:
  --radius R             distance threshold r (default 5)
  --k K                  neighbor-count threshold k (default 4)

Pipeline:
  --strategy S           domain | unispace | ddriven | cdriven | dmt
                         (default dmt)
  --algorithm A          nested_loop | cell_based (baselines only)
  --partitions M         target partition count (default n/4000, >=32)
  --reducers R           reduce tasks (default 32)
  --blocks B             input blocks / map tasks (default 32)
  --threads N            worker threads running map/reduce tasks
                         (default: all hardware threads; 1 = sequential,
                         output is byte-identical for any N)
  --kernels MODE         distance kernels: auto (batched SIMD, default) |
                         scalar (per-pair reference); verdicts are
                         bit-identical either way
  --shuffle MODE         reduce-side grouping: columnar (counting sort,
                         default) | sorted (stable sort escape hatch);
                         results are byte-identical either way
  --sample-rate Y        preprocessing sampling rate (default 0.05)
  --buckets B            mini buckets per dimension (default 64)
  --seed N               RNG seed (default 42)

  --suggest-r F          derive r from the data targeting outlier
                         fraction F (overrides --radius)

Fault tolerance (simulation):
  --max_task_attempts N  retry budget per task (default 4)
  --fault_seed N         fault-injection seed (default 1)
  --fault_failure_prob P injected task-attempt failure probability
  --fault_straggler_prob P  injected straggler probability
  --fault_straggler_mult M  straggler slowdown multiplier (default 4)
  --fault_drop_prob P    injected shuffle-record drop probability
  --fault_corrupt_prob P injected shuffle-record corruption probability
                         (injection is enabled when any probability > 0)
  --fault_crash_task N   crash right after task N of --fault_crash_phase
                         commits (checkpoint already durable); -1 = off
  --fault_crash_phase P  map | reduce (default reduce)
  --fault_crash_exit     hard-exit (code 42, no flushes — simulated
                         kill -9) instead of a structured job error

Durable execution:
  --checkpoint_dir DIR   write a per-task checkpoint after every commit
                         under DIR/detect (and DIR/verify for --strategy
                         domain)
  --resume               skip tasks whose checkpoints committed; with the
                         same configuration the output is byte-identical
                         to an uninterrupted run
  --deadline_ms N        abort with DeadlineExceeded after N wall-clock ms
                         (checked between tasks and between cells)
  --memory_budget_mb N   cap arena / shuffle-scratch memory; the columnar
                         shuffle degrades to the sorted path when its
                         scratch alone would not fit (results identical),
                         genuine overcommit aborts with ResourceExhausted
  --spill_dir DIR        spill shuffle runs to DIR when a map task's
                         emitted bytes cross the spill threshold; output
                         stays byte-identical to the in-memory shuffle
  --spill_threshold_mb N per-map-task bytes before spilling (default 0 =
                         memory budget / 4, or 64 MiB without a budget)

Output:
  --out PATH             write outlier coordinates (.csv or .bin)
  --plan-out PATH        write the multi-tactic plan
  --verbose              per-stage and per-plan diagnostics

Observability:
  --trace_out PATH       write a Chrome trace of the run (one span per
                         pipeline phase and per task attempt; open at
                         chrome://tracing or ui.perfetto.dev)
  --metrics_out PATH     write the metrics registry plus per-partition
                         predicted-vs-measured cost snapshots as JSON
)";

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

dod::Result<dod::Dataset> LoadOrGenerate(const dod::FlagParser& flags) {
  const std::string input = flags.GetStringOr("input", "");
  if (!input.empty()) {
    // .bin files use the binary fast path.
    if (input.size() > 4 && input.substr(input.size() - 4) == ".bin") {
      return dod::ReadBinary(input);
    }
    dod::CsvOptions options;
    const std::string delimiter = flags.GetStringOr("delimiter", ",");
    if (!delimiter.empty()) options.delimiter = delimiter[0];
    auto skip = flags.GetInt("skip-rows", 0);
    if (!skip.ok()) return skip.status();
    options.skip_rows = static_cast<int>(skip.value());
    const std::string columns = flags.GetStringOr("columns", "");
    if (!columns.empty()) {
      size_t pos = 0;
      while (pos < columns.size()) {
        size_t comma = columns.find(',', pos);
        if (comma == std::string::npos) comma = columns.size();
        options.columns.push_back(
            std::atoi(columns.substr(pos, comma - pos).c_str()));
        pos = comma + 1;
      }
    }
    return dod::ReadCsv(input, options);
  }

  const std::string kind = flags.GetStringOr("generate", "region:MA");
  auto n_flag = flags.GetInt("n", 30000);
  if (!n_flag.ok()) return n_flag.status();
  const size_t n = static_cast<size_t>(n_flag.value());
  auto seed_flag = flags.GetInt("seed", 42);
  if (!seed_flag.ok()) return seed_flag.status();
  const uint64_t seed = static_cast<uint64_t>(seed_flag.value());

  if (kind == "uniform") {
    auto density = flags.GetDouble("density", 0.05);
    if (!density.ok()) return density.status();
    return dod::GenerateUniform(n, dod::DomainForDensity(n, density.value()),
                                seed);
  }
  if (kind == "tiger") return dod::GenerateTigerLike(n, seed);
  if (kind.rfind("region:", 0) == 0) {
    const std::string region = kind.substr(7);
    dod::GeoRegion geo;
    if (region == "OH") {
      geo = dod::GeoRegion::kOhio;
    } else if (region == "MA") {
      geo = dod::GeoRegion::kMassachusetts;
    } else if (region == "CA") {
      geo = dod::GeoRegion::kCalifornia;
    } else if (region == "NY") {
      geo = dod::GeoRegion::kNewYork;
    } else {
      return dod::Status::InvalidArgument("unknown region " + region);
    }
    return dod::GenerateGeoRegion(geo, n, seed);
  }
  if (kind.rfind("hierarchical:", 0) == 0) {
    const std::string level = kind.substr(13);
    dod::MapLevel map_level;
    if (level == "MA") {
      map_level = dod::MapLevel::kMassachusetts;
    } else if (level == "NE") {
      map_level = dod::MapLevel::kNewEngland;
    } else if (level == "US") {
      map_level = dod::MapLevel::kUnitedStates;
    } else if (level == "Planet") {
      map_level = dod::MapLevel::kPlanet;
    } else {
      return dod::Status::InvalidArgument("unknown level " + level);
    }
    return dod::GenerateHierarchical(map_level, n, seed);
  }
  return dod::Status::InvalidArgument("unknown --generate kind: " + kind);
}

dod::Result<dod::DodConfig> BuildConfig(const dod::FlagParser& flags,
                                        const dod::Dataset& data) {
  const size_t n = data.size();
  auto radius = flags.GetDouble("radius", 5.0);
  if (!radius.ok()) return radius.status();
  auto k = flags.GetInt("k", 4);
  if (!k.ok()) return k.status();
  if (radius.value() <= 0.0 || k.value() < 1) {
    return dod::Status::InvalidArgument("--radius must be > 0, --k >= 1");
  }
  dod::DetectionParams params;
  params.radius = radius.value();
  params.min_neighbors = static_cast<int>(k.value());
  const std::string kernels = flags.GetStringOr("kernels", "auto");
  if (!dod::ParseKernelMode(kernels, &params.kernels)) {
    return dod::Status::InvalidArgument("--kernels must be scalar or auto");
  }

  // --suggest-r FRACTION derives r from the data so that roughly that
  // fraction of points comes out as outliers (overrides --radius).
  if (flags.HasFlag("suggest-r")) {
    auto fraction = flags.GetDouble("suggest-r", 0.01);
    if (!fraction.ok()) return fraction.status();
    dod::AdvisorOptions advisor;
    advisor.min_neighbors = params.min_neighbors;
    advisor.target_outlier_fraction = fraction.value();
    const dod::ParameterSuggestion suggestion =
        dod::SuggestParameters(data, advisor);
    params.radius = suggestion.params.radius;
    std::printf("suggested r = %g (sampled k-distance %g at rate %g)\n",
                params.radius, suggestion.sampled_k_distance,
                suggestion.sampling_rate);
  }

  const std::string strategy_name = flags.GetStringOr("strategy", "dmt");
  dod::StrategyKind strategy;
  if (strategy_name == "domain") {
    strategy = dod::StrategyKind::kDomain;
  } else if (strategy_name == "unispace") {
    strategy = dod::StrategyKind::kUniSpace;
  } else if (strategy_name == "ddriven") {
    strategy = dod::StrategyKind::kDDriven;
  } else if (strategy_name == "cdriven") {
    strategy = dod::StrategyKind::kCDriven;
  } else if (strategy_name == "dmt") {
    strategy = dod::StrategyKind::kDmt;
  } else {
    return dod::Status::InvalidArgument("unknown --strategy " +
                                        strategy_name);
  }

  const std::string algorithm_name =
      flags.GetStringOr("algorithm", "cell_based");
  dod::AlgorithmKind algorithm;
  if (algorithm_name == "nested_loop" || algorithm_name == "nl") {
    algorithm = dod::AlgorithmKind::kNestedLoop;
  } else if (algorithm_name == "cell_based" || algorithm_name == "cb") {
    algorithm = dod::AlgorithmKind::kCellBased;
  } else {
    return dod::Status::InvalidArgument("unknown --algorithm " +
                                        algorithm_name);
  }

  dod::DodConfig config =
      strategy == dod::StrategyKind::kDmt
          ? dod::DodConfig::Dmt(params)
          : dod::DodConfig::Baseline(params, strategy, algorithm);

  auto partitions = flags.GetInt(
      "partitions", static_cast<long long>(std::max<size_t>(32, n / 4000)));
  if (!partitions.ok()) return partitions.status();
  config.target_partitions = static_cast<size_t>(partitions.value());
  auto reducers = flags.GetInt("reducers", 32);
  if (!reducers.ok()) return reducers.status();
  config.num_reduce_tasks = static_cast<int>(reducers.value());
  auto blocks = flags.GetInt("blocks", 32);
  if (!blocks.ok()) return blocks.status();
  config.num_blocks = static_cast<size_t>(blocks.value());
  // 0 = all hardware threads (the engine resolves it).
  auto threads = flags.GetInt("threads", 0);
  if (!threads.ok()) return threads.status();
  if (threads.value() < 0) {
    return dod::Status::InvalidArgument("--threads must be >= 0");
  }
  config.num_threads = static_cast<int>(threads.value());
  auto rate = flags.GetDouble("sample-rate", 0.05);
  if (!rate.ok()) return rate.status();
  config.sampler.rate = rate.value();
  auto buckets = flags.GetInt("buckets", 64);
  if (!buckets.ok()) return buckets.status();
  config.sampler.buckets_per_dim = static_cast<int>(buckets.value());
  auto seed = flags.GetInt("seed", 42);
  if (!seed.ok()) return seed.status();
  config.seed = static_cast<uint64_t>(seed.value());
  const std::string shuffle = flags.GetStringOr("shuffle", "columnar");
  if (!dod::ParseShuffleMode(shuffle, &config.shuffle)) {
    return dod::Status::InvalidArgument("--shuffle must be sorted or columnar");
  }

  auto attempts = flags.GetInt("max_task_attempts", 4);
  if (!attempts.ok()) return attempts.status();
  if (attempts.value() < 1) {
    return dod::Status::InvalidArgument("--max_task_attempts must be >= 1");
  }
  config.retry.max_task_attempts = static_cast<int>(attempts.value());

  auto fault_seed = flags.GetInt("fault_seed", 1);
  if (!fault_seed.ok()) return fault_seed.status();
  config.faults.seed = static_cast<uint64_t>(fault_seed.value());
  auto failure_prob = flags.GetDouble("fault_failure_prob", 0.0);
  if (!failure_prob.ok()) return failure_prob.status();
  config.faults.task_failure_prob = failure_prob.value();
  auto straggler_prob = flags.GetDouble("fault_straggler_prob", 0.0);
  if (!straggler_prob.ok()) return straggler_prob.status();
  config.faults.straggler_prob = straggler_prob.value();
  auto straggler_mult = flags.GetDouble("fault_straggler_mult", 4.0);
  if (!straggler_mult.ok()) return straggler_mult.status();
  config.faults.straggler_multiplier = straggler_mult.value();
  auto drop_prob = flags.GetDouble("fault_drop_prob", 0.0);
  if (!drop_prob.ok()) return drop_prob.status();
  config.faults.shuffle_drop_prob = drop_prob.value();
  auto corrupt_prob = flags.GetDouble("fault_corrupt_prob", 0.0);
  if (!corrupt_prob.ok()) return corrupt_prob.status();
  config.faults.shuffle_corrupt_prob = corrupt_prob.value();
  config.faults.enabled = config.faults.task_failure_prob > 0.0 ||
                          config.faults.straggler_prob > 0.0 ||
                          config.faults.shuffle_drop_prob > 0.0 ||
                          config.faults.shuffle_corrupt_prob > 0.0;

  // Crash injection fires regardless of `faults.enabled` (it is not a
  // probabilistic fault; see FaultSpec).
  auto crash_task = flags.GetInt("fault_crash_task", -1);
  if (!crash_task.ok()) return crash_task.status();
  config.faults.crash_at_task = static_cast<int>(crash_task.value());
  const std::string crash_phase = flags.GetStringOr("fault_crash_phase",
                                                    "reduce");
  if (crash_phase == "map") {
    config.faults.crash_phase = dod::TaskPhase::kMap;
  } else if (crash_phase == "reduce") {
    config.faults.crash_phase = dod::TaskPhase::kReduce;
  } else {
    return dod::Status::InvalidArgument(
        "--fault_crash_phase must be map or reduce");
  }
  config.faults.crash_exit = flags.GetBoolOr("fault_crash_exit", false);

  config.checkpoint_dir = flags.GetStringOr("checkpoint_dir", "");
  config.resume = flags.GetBoolOr("resume", false);
  if (config.resume && config.checkpoint_dir.empty()) {
    return dod::Status::InvalidArgument("--resume requires --checkpoint_dir");
  }
  auto deadline_ms = flags.GetInt("deadline_ms", 0);
  if (!deadline_ms.ok()) return deadline_ms.status();
  config.deadline_seconds = static_cast<double>(deadline_ms.value()) / 1000.0;
  auto budget_mb = flags.GetInt("memory_budget_mb", 0);
  if (!budget_mb.ok()) return budget_mb.status();
  if (budget_mb.value() < 0) {
    return dod::Status::InvalidArgument("--memory_budget_mb must be >= 0");
  }
  config.memory_budget_mb = static_cast<uint64_t>(budget_mb.value());
  config.spill_dir = flags.GetStringOr("spill_dir", "");
  auto spill_mb = flags.GetInt("spill_threshold_mb", 0);
  if (!spill_mb.ok()) return spill_mb.status();
  if (spill_mb.value() < 0) {
    return dod::Status::InvalidArgument("--spill_threshold_mb must be >= 0");
  }
  if (spill_mb.value() > 0 && config.spill_dir.empty()) {
    return dod::Status::InvalidArgument(
        "--spill_threshold_mb requires --spill_dir");
  }
  config.spill_threshold_mb = static_cast<uint64_t>(spill_mb.value());
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = dod::FlagParser::Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed.status().ToString());
  const dod::FlagParser& flags = parsed.value();
  if (flags.GetBoolOr("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  auto data = LoadOrGenerate(flags);
  if (!data.ok()) return Fail(data.status().ToString());
  if (data.value().empty()) return Fail("no input points");

  auto config = BuildConfig(flags, data.value());
  if (!config.ok()) return Fail(config.status().ToString());

  const bool verbose = flags.GetBoolOr("verbose", false);
  const std::string out_path = flags.GetStringOr("out", "");
  const std::string plan_path = flags.GetStringOr("plan-out", "");
  const std::string trace_path = flags.GetStringOr("trace_out", "");
  const std::string metrics_path = flags.GetStringOr("metrics_out", "");
  const std::vector<std::string> unused = flags.UnusedFlags();
  if (!unused.empty()) {
    return Fail("unknown flag --" + unused.front() + " (see --help)");
  }

  if (!trace_path.empty()) dod::trace::Start();
  dod::DodPipeline pipeline(config.value());
  const dod::Result<dod::DodResult> run = pipeline.Run(data.value());
  if (!trace_path.empty()) {
    // Written even when the run failed: a trace of a failed run is the
    // most useful one.
    dod::trace::Stop();
    const dod::Status status = dod::trace::WriteChromeJson(trace_path);
    if (!status.ok()) return Fail(status.ToString());
  }
  if (!run.ok()) return Fail(run.status().ToString());
  const dod::DodResult& result = run.value();
  if (!trace_path.empty()) {
    std::printf("wrote trace to %s\n", trace_path.c_str());
  }

  if (!metrics_path.empty()) {
    const std::string json = dod::ObservabilityReportJson(
        dod::MetricsRegistry::Global().Snapshot(),
        result.detect_stats.partition_profiles);
    std::FILE* file = std::fopen(metrics_path.c_str(), "w");
    if (file == nullptr ||
        std::fwrite(json.data(), 1, json.size(), file) != json.size() ||
        std::fputc('\n', file) == EOF || std::fclose(file) != 0) {
      if (file != nullptr) std::fclose(file);
      return Fail("cannot write metrics to " + metrics_path);
    }
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }

  std::fputs(
      dod::FormatRunReport(config.value(), result, data.value().size())
          .c_str(),
      stdout);

  if (verbose) {
    std::printf("detect job    : %s\n",
                result.detect_stats.ToString().c_str());
    for (const auto& [name, value] : result.detect_stats.counters.values()) {
      std::printf("  counter %s = %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }

  if (!out_path.empty()) {
    dod::Dataset outliers(data.value().dims());
    for (dod::PointId id : result.outliers) {
      outliers.Append(data.value()[id]);
    }
    const bool binary = out_path.size() > 4 &&
                        out_path.substr(out_path.size() - 4) == ".bin";
    const dod::Status status = binary ? dod::WriteBinary(outliers, out_path)
                                      : dod::WriteCsv(outliers, out_path);
    if (!status.ok()) return Fail(status.ToString());
    std::printf("wrote %zu outliers to %s\n", outliers.size(),
                out_path.c_str());
  }
  if (!plan_path.empty()) {
    const dod::Status status = dod::WritePlanFile(result.plan, plan_path);
    if (!status.ok()) return Fail(status.ToString());
    std::printf("wrote plan to %s\n", plan_path.c_str());
  }
  return 0;
}
