// Copyright 2026 The DOD Authors.
//
// dod_stream_cli — replay a block schedule through the streaming outlier
// service (src/streaming/) and log one verdict-delta line per round.
//
// The tool slices a generated dataset into consecutive fixed-size blocks
// and feeds them in order through a StreamingDetector with a count-based
// sliding window. The per-round delta log is fully deterministic (no
// timings), so two replays of the same schedule — including one
// interrupted by --kill_after_round and continued with --resume — must
// produce byte-identical logs; CI diffs them.
//
// With --lateness the blocks go through the watermark reorder stage
// (Ingest) instead of in-order Feed, and --reorder_seed shuffles the
// arrival order within the lateness bound (priority = timestamp + a
// seeded uniform jitter in [0, L), so no block ever arrives late): the
// admitted-order delta log must still be byte-identical to the in-order
// run's — CI diffs that too.
//
// Examples:
//   dod_stream_cli --generate uniform --n 20000 --block_size 500
//                  --window 8 --radius 2 --k 4 --delta_out deltas.log
//   dod_stream_cli ... --oracle            # cross-check every round
//                                          # against a batch pipeline run
//   dod_stream_cli ... --lateness 4 --reorder_seed 7   # shuffled replay
//   dod_stream_cli ... --checkpoint_dir ck --kill_after_round 12
//   dod_stream_cli ... --checkpoint_dir ck --resume   # finish the schedule

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "data/tiger_like.h"
#include "kernels/kernel_mode.h"
#include "mapreduce/shuffle.h"
#include "observability/metrics.h"
#include "observability/profile.h"
#include "observability/trace.h"
#include "streaming/streaming_detector.h"

namespace {

constexpr const char* kUsage = R"(dod_stream_cli — streaming outlier detection over a replayed block schedule

Workload:
  --generate KIND        uniform (default) | tiger
  --n N                  total points in the schedule (default 20000)
  --density D            mean density for uniform data (default 0.05)
  --seed N               RNG seed (default 42)
  --block_size B         points per ingested block (default 500)

Outlier definition:
  --radius R             distance threshold r (default 5)
  --k K                  neighbor-count threshold k (default 4)
  --kernels MODE         scalar | auto (default auto; verdicts identical)

Streaming service:
  --window W             resident blocks in the sliding window (default 8)
  --cell_side S          grid cell side (default: r)
  --algorithm A          nested_loop | cell_based | brute_force
                         (default cell_based; all exact, verdicts identical)
  --threads N            threads fanning out over dirty cells (default 1;
                         0 = all hardware threads; deltas identical)
  --summaries MODE       on (default) | off — incremental neighbor-count
                         summaries vs full dirty-cell re-detection
                         (escape hatch; deltas identical either way)
  --summary_slack N      saturation slack: counting stops at k + N and
                         carries a lower bound (default 32; cost only)

Out-of-order admission:
  --lateness L           enable the watermark reorder stage with bounded
                         lateness L (timestamp units = block indices);
                         blocks go through Ingest and admit once the
                         watermark passes them (default: disabled)
  --idle_timeout T       exclude sources lagging the global clock by more
                         than T from the watermark (default 0 = never)
  --source_id N          label every replayed block with this source id
                         (default 0)
  --reorder_seed N       shuffle the arrival order within the lateness
                         bound (seeded, deterministic; requires
                         --lateness > 0; default 0 = in-order arrival)

Durability:
  --checkpoint_dir DIR   commit window state every --checkpoint_every
                         rounds (default 1)
  --resume               restore the latest committed round and continue
                         the schedule from there
  --kill_after_round N   hard-exit (code 42, no flushes beyond the delta
                         log — simulated kill -9) right after round N

Verification and output:
  --oracle               after every round, re-detect the window from
                         scratch with the batch pipeline and compare
                         outlier sets (exit 1 on any mismatch)
  --oracle_skip_empty    skip the batch re-run on rounds whose delta is
                         empty — the verdict set cannot have changed
                         (default off: every round cross-checks)
  --shuffle MODE         columnar | sorted (oracle pipeline only)
  --spill_dir DIR        spill policy inherited by the oracle pipeline's
                         shuffle (runs spill to DIR past the threshold;
                         verdicts stay byte-identical)
  --spill_threshold_mb N per-map-task bytes before the oracle shuffle
                         spills (default 0 = budget-derived / 64 MiB)
  --delta_out PATH       deterministic per-round delta log (append mode
                         under --resume, else truncate)
  --trace_out PATH       Chrome trace (stream.round spans)
  --metrics_out PATH     metrics registry JSON (stream.* families)
)";

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

// Seeded arrival-order jitter (SplitMix64; same generator family the fuzz
// tests use). Deterministic across platforms.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double UniformDouble(uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

std::string IdList(const std::vector<dod::PointId>& ids) {
  std::string out = "[";
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(ids[i]);
  }
  out += "]";
  return out;
}

struct Schedule {
  dod::Dataset data = dod::Dataset(2);
  size_t block_size = 0;
  size_t num_blocks = 0;
  size_t window_blocks = 0;

  // Stream ids of block b: the consecutive dataset ids [begin, end).
  size_t BlockBegin(size_t b) const { return b * block_size; }
  size_t BlockEnd(size_t b) const {
    return std::min(data.size(), (b + 1) * block_size);
  }
  // Blocks resident after round r (1-based; blocks [r - W, r) clipped).
  size_t FirstResident(size_t round) const {
    return round > window_blocks ? round - window_blocks : 0;
  }
};

// From-scratch batch verdicts over the window contents after `round`,
// as stream ids. The streaming service must match this set exactly.
dod::Result<std::vector<dod::PointId>> OracleOutliers(
    const Schedule& schedule, size_t round, const dod::DodConfig& config) {
  dod::Dataset window(schedule.data.dims());
  std::vector<dod::PointId> window_ids;
  for (size_t b = schedule.FirstResident(round); b < round; ++b) {
    for (size_t i = schedule.BlockBegin(b); i < schedule.BlockEnd(b); ++i) {
      window.Append(schedule.data[static_cast<dod::PointId>(i)]);
      window_ids.push_back(static_cast<dod::PointId>(i));
    }
  }
  if (window.empty()) return std::vector<dod::PointId>{};
  dod::DodPipeline pipeline(config);
  DOD_ASSIGN_OR_RETURN(dod::DodResult result, pipeline.Run(window));
  std::vector<dod::PointId> outliers;
  outliers.reserve(result.outliers.size());
  for (dod::PointId local : result.outliers) {
    outliers.push_back(window_ids[local]);
  }
  // The pipeline reports ascending local ids and window_ids is ascending,
  // so the mapped set is already sorted like StreamingDetector::outliers().
  return outliers;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = dod::FlagParser::Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed.status().ToString());
  const dod::FlagParser& flags = parsed.value();
  if (flags.GetBoolOr("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  auto n_flag = flags.GetInt("n", 20000);
  auto seed_flag = flags.GetInt("seed", 42);
  auto block_flag = flags.GetInt("block_size", 500);
  auto window_flag = flags.GetInt("window", 8);
  auto radius_flag = flags.GetDouble("radius", 5.0);
  auto k_flag = flags.GetInt("k", 4);
  auto threads_flag = flags.GetInt("threads", 1);
  auto cell_side_flag = flags.GetDouble("cell_side", 0.0);
  auto every_flag = flags.GetInt("checkpoint_every", 1);
  auto kill_flag = flags.GetInt("kill_after_round", 0);
  auto density_flag = flags.GetDouble("density", 0.05);
  auto slack_flag = flags.GetInt("summary_slack", 32);
  auto lateness_flag = flags.GetDouble("lateness", -1.0);
  auto idle_flag = flags.GetDouble("idle_timeout", 0.0);
  auto source_flag = flags.GetInt("source_id", 0);
  auto reorder_flag = flags.GetInt("reorder_seed", 0);
  for (const dod::Status& status :
       {n_flag.status(), seed_flag.status(), block_flag.status(),
        window_flag.status(), radius_flag.status(), k_flag.status(),
        threads_flag.status(), cell_side_flag.status(), every_flag.status(),
        kill_flag.status(), density_flag.status(), slack_flag.status(),
        lateness_flag.status(), idle_flag.status(), source_flag.status(),
        reorder_flag.status()}) {
    if (!status.ok()) return Fail(status.ToString());
  }
  if (n_flag.value() < 1 || block_flag.value() < 1 || window_flag.value() < 1) {
    return Fail("--n, --block_size and --window must be >= 1");
  }
  if (radius_flag.value() <= 0.0 || k_flag.value() < 1) {
    return Fail("--radius must be > 0, --k >= 1");
  }

  Schedule schedule;
  const size_t n = static_cast<size_t>(n_flag.value());
  const uint64_t seed = static_cast<uint64_t>(seed_flag.value());
  const std::string kind = flags.GetStringOr("generate", "uniform");
  if (kind == "uniform") {
    schedule.data = dod::GenerateUniform(
        n, dod::DomainForDensity(n, density_flag.value()), seed);
  } else if (kind == "tiger") {
    schedule.data = dod::GenerateTigerLike(n, seed);
  } else {
    return Fail("unknown --generate kind: " + kind);
  }
  schedule.block_size = static_cast<size_t>(block_flag.value());
  schedule.num_blocks =
      (schedule.data.size() + schedule.block_size - 1) / schedule.block_size;
  schedule.window_blocks = static_cast<size_t>(window_flag.value());

  dod::StreamingConfig config;
  config.params.radius = radius_flag.value();
  config.params.min_neighbors = static_cast<int>(k_flag.value());
  config.params.seed = seed;
  const std::string kernels = flags.GetStringOr("kernels", "auto");
  if (!dod::ParseKernelMode(kernels, &config.params.kernels)) {
    return Fail("--kernels must be scalar or auto");
  }
  const std::string algorithm = flags.GetStringOr("algorithm", "cell_based");
  if (algorithm == "nested_loop" || algorithm == "nl") {
    config.algorithm = dod::AlgorithmKind::kNestedLoop;
  } else if (algorithm == "cell_based" || algorithm == "cb") {
    config.algorithm = dod::AlgorithmKind::kCellBased;
  } else if (algorithm == "brute_force" || algorithm == "bf") {
    config.algorithm = dod::AlgorithmKind::kBruteForce;
  } else {
    return Fail("unknown --algorithm " + algorithm);
  }
  config.num_threads = static_cast<int>(threads_flag.value());
  config.window_blocks = schedule.window_blocks;
  config.cell_side = cell_side_flag.value();
  const std::string summaries = flags.GetStringOr("summaries", "on");
  if (summaries == "on") {
    config.summaries = true;
  } else if (summaries == "off") {
    config.summaries = false;
  } else {
    return Fail("--summaries must be on or off");
  }
  if (slack_flag.value() < 0) return Fail("--summary_slack must be >= 0");
  config.summary_slack = static_cast<int>(slack_flag.value());
  // --lateness (any value >= 0) switches the replay from in-order Feed to
  // the watermark reorder stage.
  const bool watermark = lateness_flag.value() >= 0.0;
  if (watermark) {
    config.watermark.enabled = true;
    config.watermark.lateness = lateness_flag.value();
    if (idle_flag.value() < 0.0) return Fail("--idle_timeout must be >= 0");
    config.watermark.idle_timeout = idle_flag.value();
  } else if (idle_flag.value() != 0.0) {
    return Fail("--idle_timeout requires --lateness");
  }
  if (source_flag.value() < 0) return Fail("--source_id must be >= 0");
  const uint32_t source_id = static_cast<uint32_t>(source_flag.value());
  const uint64_t reorder_seed =
      static_cast<uint64_t>(std::max(0LL, reorder_flag.value()));
  if (reorder_seed != 0 && (!watermark || lateness_flag.value() <= 0.0)) {
    return Fail(
        "--reorder_seed shuffles arrivals within the lateness bound and "
        "needs --lateness > 0");
  }
  config.checkpoint_dir = flags.GetStringOr("checkpoint_dir", "");
  config.resume = flags.GetBoolOr("resume", false);
  config.checkpoint_every = static_cast<uint64_t>(every_flag.value());
  // The schedule's identity: resuming under a different workload would
  // silently replay the wrong blocks, so it is part of the job key. The
  // arrival order (reorder seed, source label) is part of the schedule.
  config.job_tag = kind + "/n=" + std::to_string(n) +
                   "/block=" + std::to_string(schedule.block_size) +
                   "/seed=" + std::to_string(seed);
  if (watermark) {
    config.job_tag += "/reorder=" + std::to_string(reorder_seed) +
                      "/source=" + std::to_string(source_id);
  }

  // Oracle pipeline configuration (batch DMT over the window contents).
  dod::DodConfig oracle_config = dod::DodConfig::Dmt(config.params);
  oracle_config.num_threads = config.num_threads;
  oracle_config.seed = seed;
  const std::string shuffle = flags.GetStringOr("shuffle", "columnar");
  if (!dod::ParseShuffleMode(shuffle, &oracle_config.shuffle)) {
    return Fail("--shuffle must be sorted or columnar");
  }
  // Spill policy: carried on the streaming config and inherited by every
  // batch engine invocation made on the window's behalf (here, the oracle
  // pipelines). Spilling never changes verdicts, so the oracle comparison
  // is as strict as ever.
  config.spill.dir = flags.GetStringOr("spill_dir", "");
  auto spill_mb = flags.GetInt("spill_threshold_mb", 0);
  if (!spill_mb.ok()) return Fail(spill_mb.status().ToString());
  if (spill_mb.value() < 0) return Fail("--spill_threshold_mb must be >= 0");
  if (spill_mb.value() > 0 && config.spill.dir.empty()) {
    return Fail("--spill_threshold_mb requires --spill_dir");
  }
  config.spill.threshold_bytes =
      static_cast<uint64_t>(spill_mb.value()) * (uint64_t{1} << 20);
  oracle_config.spill_dir = config.spill.dir;
  oracle_config.spill_threshold_mb = static_cast<uint64_t>(spill_mb.value());

  const bool oracle = flags.GetBoolOr("oracle", false);
  const bool oracle_skip_empty = flags.GetBoolOr("oracle_skip_empty", false);
  if (oracle_skip_empty && !oracle) {
    return Fail("--oracle_skip_empty requires --oracle");
  }
  const uint64_t kill_after =
      static_cast<uint64_t>(std::max(0LL, kill_flag.value()));
  const std::string delta_path = flags.GetStringOr("delta_out", "");
  const std::string trace_path = flags.GetStringOr("trace_out", "");
  const std::string metrics_path = flags.GetStringOr("metrics_out", "");
  const std::vector<std::string> unused = flags.UnusedFlags();
  if (!unused.empty()) {
    return Fail("unknown flag --" + unused.front() + " (see --help)");
  }

  if (!trace_path.empty()) dod::trace::Start();

  auto created = dod::StreamingDetector::Create(config);
  if (!created.ok()) return Fail(created.status().ToString());
  dod::StreamingDetector& detector = *created.value();

  std::FILE* delta_file = nullptr;
  if (!delta_path.empty()) {
    // Append under --resume so the restored run extends the log the killed
    // run left behind; the concatenation must equal an uninterrupted log.
    delta_file = std::fopen(delta_path.c_str(), config.resume ? "a" : "w");
    if (delta_file == nullptr) {
      return Fail("cannot open --delta_out " + delta_path);
    }
  }

  // The outlier set reconstructed from the applied deltas: one Ingest can
  // admit several rounds, so per-round oracle checks can't read the
  // detector's (end-of-drain) set — they replay the deltas instead.
  std::vector<dod::PointId> applied(detector.outliers());

  // One admitted round: log its delta line and cross-check the oracle.
  // Timestamps are block indices and admission is canonical-order, so the
  // window after admitted round R holds exactly blocks [R - W, R) — the
  // same contents an in-order replay has, whatever the arrival order.
  const auto emit_round = [&](const dod::OutlierDelta& delta) -> int {
    if (oracle) {
      std::vector<dod::PointId> next;
      std::set_difference(applied.begin(), applied.end(),
                          delta.newly_cleared.begin(),
                          delta.newly_cleared.end(),
                          std::back_inserter(next));
      applied.clear();
      std::merge(next.begin(), next.end(), delta.newly_flagged.begin(),
                 delta.newly_flagged.end(), std::back_inserter(applied));
    }
    if (delta_file != nullptr) {
      std::fprintf(delta_file,
                   "round=%llu appended=%zu expired=%zu resident=%zu "
                   "cells=%zu dirty=%zu flagged=%s cleared=%s\n",
                   static_cast<unsigned long long>(delta.stats.round),
                   delta.stats.appended_points, delta.stats.expired_points,
                   delta.stats.resident_points, delta.stats.resident_cells,
                   delta.stats.dirty_cells,
                   IdList(delta.newly_flagged).c_str(),
                   IdList(delta.newly_cleared).c_str());
      std::fflush(delta_file);
    }
    if (oracle) {
      // An empty delta means the verdict set is unchanged since the
      // previous (checked) round; --oracle_skip_empty trusts that and
      // saves the batch re-run.
      if (oracle_skip_empty && delta.newly_flagged.empty() &&
          delta.newly_cleared.empty()) {
        return 0;
      }
      auto expected = OracleOutliers(
          schedule, static_cast<size_t>(delta.stats.round), oracle_config);
      if (!expected.ok()) return Fail(expected.status().ToString());
      if (expected.value() != applied) {
        std::fprintf(stderr,
                     "oracle mismatch at round %llu: stream has %zu "
                     "outliers, batch has %zu\n",
                     static_cast<unsigned long long>(delta.stats.round),
                     applied.size(), expected.value().size());
        return 1;
      }
    }
    return 0;
  };

  const auto make_block = [&](size_t b) {
    dod::StreamBlock block(schedule.data.dims());
    for (size_t i = schedule.BlockBegin(b); i < schedule.BlockEnd(b); ++i) {
      block.Add(static_cast<dod::PointId>(i),
                schedule.data[static_cast<dod::PointId>(i)]);
    }
    block.timestamp = static_cast<double>(b);
    block.source_id = source_id;
    return block;
  };

  if (!watermark) {
    // Rounds completed before this process (0 on a fresh run): the
    // schedule resumes at the next unfed block.
    for (size_t b = detector.rounds(); b < schedule.num_blocks; ++b) {
      auto fed = detector.Feed(make_block(b));
      if (!fed.ok()) return Fail(fed.status().ToString());
      const int rc = emit_round(fed.value());
      if (rc != 0) return rc;
      if (kill_after > 0 && fed.value().stats.round >= kill_after) {
        // Simulated kill -9: the delta log is already flushed, the
        // checkpoint (if any) already committed inside Feed. No
        // destructors, no stream flushes.
        std::_Exit(42);
      }
    }
  } else {
    // Arrival order: block indices, optionally shuffled within the
    // lateness bound — priority = timestamp + jitter in [0, L), so an
    // earlier arrival is never more than L ahead of a later block's
    // timestamp and nothing is rejected as late.
    std::vector<size_t> arrival_order(schedule.num_blocks);
    for (size_t b = 0; b < schedule.num_blocks; ++b) arrival_order[b] = b;
    if (reorder_seed != 0) {
      std::vector<std::pair<double, size_t>> priority;
      priority.reserve(schedule.num_blocks);
      uint64_t state = reorder_seed;
      for (size_t b = 0; b < schedule.num_blocks; ++b) {
        priority.emplace_back(
            static_cast<double>(b) +
                UniformDouble(&state) * lateness_flag.value(),
            b);
      }
      std::stable_sort(priority.begin(), priority.end());
      for (size_t i = 0; i < schedule.num_blocks; ++i) {
        arrival_order[i] = priority[i].second;
      }
    }
    // Arrivals accepted before this process: the resumed replay continues
    // at that offset of the (deterministic) arrival order — admitted
    // rounds and the reorder buffer were both restored.
    for (size_t a = static_cast<size_t>(detector.arrivals());
         a < schedule.num_blocks; ++a) {
      auto ingested = detector.Ingest(make_block(arrival_order[a]));
      if (!ingested.ok()) return Fail(ingested.status().ToString());
      for (const dod::OutlierDelta& delta : ingested.value().admitted) {
        const int rc = emit_round(delta);
        if (rc != 0) return rc;
      }
      // The kill fires only once every admitted delta of this Ingest is
      // logged: the checkpoint inside Ingest already covers them, so the
      // resumed run continues at the next arrival with no lost lines.
      if (kill_after > 0 && detector.rounds() >= kill_after) {
        std::_Exit(42);
      }
    }
    // End of schedule: admit everything still parked behind the watermark.
    auto flushed = detector.Flush();
    if (!flushed.ok()) return Fail(flushed.status().ToString());
    for (const dod::OutlierDelta& delta : flushed.value().admitted) {
      const int rc = emit_round(delta);
      if (rc != 0) return rc;
    }
  }
  if (oracle && applied != detector.outliers()) {
    std::fprintf(stderr,
                 "delta replay mismatch: applying all deltas gives %zu "
                 "outliers, detector has %zu\n",
                 applied.size(), detector.outliers().size());
    return 1;
  }
  if (delta_file != nullptr) std::fclose(delta_file);

  if (!trace_path.empty()) {
    dod::trace::Stop();
    const dod::Status status = dod::trace::WriteChromeJson(trace_path);
    if (!status.ok()) return Fail(status.ToString());
    std::printf("wrote trace to %s\n", trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    const std::string json = dod::ObservabilityReportJson(
        dod::MetricsRegistry::Global().Snapshot(), {});
    std::FILE* file = std::fopen(metrics_path.c_str(), "w");
    if (file == nullptr ||
        std::fwrite(json.data(), 1, json.size(), file) != json.size() ||
        std::fputc('\n', file) == EOF || std::fclose(file) != 0) {
      if (file != nullptr) std::fclose(file);
      return Fail("cannot write metrics to " + metrics_path);
    }
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }

  std::printf(
      "streamed %zu blocks (%zu points, window %zu blocks): "
      "%zu resident points in %zu cells, %zu outliers%s\n",
      schedule.num_blocks, schedule.data.size(), schedule.window_blocks,
      detector.resident_points(), detector.resident_cells(),
      detector.outliers().size(), oracle ? " [oracle verified]" : "");
  return 0;
}
