// Copyright 2026 The DOD Authors.
//
// validate_trace — schema checker for the observability artifacts dod_cli
// emits (--trace_out / --metrics_out). Used by CI to assert that a faulted
// multi-threaded run produced a Chrome-loadable trace with one span per
// task attempt and a metrics dump with populated per-partition cost rows.
//
//   validate_trace --trace trace.json --metrics metrics.json
//                  [--min_task_spans N] [--min_partitions N]
//                  [--require_durability] [--require_streaming]
//                  [--require_spill]
//
// With --require_durability the run must have been checkpointed: the trace
// must hold at least one "durability"-category span and the metrics dump
// must carry the full durability.* schema (checkpoint counters + write
// histogram + memory gauge) with at least one task written or resumed.
//
// With --require_spill the run's shuffle must actually have spilled: the
// trace must hold at least one shuffle_spill span carrying its
// records/bytes args, and the metrics dump must carry the full mr.spill.*
// schema (run counters + run-records histogram) with runs both written
// and merged, plus the runtime.worker_groups gauge and
// runtime.steal.{local,remote} counters of the locality-aware pool.
//
// With --require_streaming the run must have come from the streaming
// service (dod_stream_cli): the trace must hold at least one
// "stream"-category span — with summary_update/summary_recount spans
// appearing in lockstep and reorder_admit spans carrying their numeric
// args — and the metrics dump must carry the stream.*, stream.summary.*
// and stream.watermark.* schemas (round/delta/pair/late-drop counters,
// dirty-fraction, round-latency and recount-queue histograms,
// resident/saturated-point and buffered-block/source gauges) with at
// least one completed round and the two path counters summing to
// stream.rounds.
// Streaming runs pass --min_task_spans 0 --min_partitions 0 — the
// incremental path re-detects cells directly, without MapReduce tasks or
// partition profiles.
//
// Exits 0 when both documents validate, 1 with a diagnostic otherwise.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/flags.h"
#include "observability/json.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "validate_trace: %s\n", message.c_str());
  return EXIT_FAILURE;
}

dod::Result<dod::JsonValue> LoadJson(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return dod::Status::InvalidArgument("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  dod::Result<dod::JsonValue> parsed = dod::JsonValue::Parse(text);
  if (!parsed.ok()) {
    return dod::Status::InvalidArgument(path + ": " +
                                        parsed.status().message());
  }
  return parsed;
}

// Chrome trace event format: every complete ("ph":"X") event must carry
// name/cat/ts/dur/pid/tid. https://chromium.org trace_event format doc.
int ValidateTrace(const dod::JsonValue& doc, long long min_task_spans,
                  bool require_durability, bool require_streaming,
                  bool require_spill) {
  if (!doc.is_object()) return Fail("trace: top level is not an object");
  if (!doc.Has("traceEvents") || !doc.Get("traceEvents").is_array()) {
    return Fail("trace: missing traceEvents array");
  }
  const auto& events = doc.Get("traceEvents").array();
  if (events.empty()) return Fail("trace: traceEvents is empty");

  long long task_spans = 0;
  long long durability_spans = 0;
  long long spill_spans = 0;
  long long merge_spans = 0;
  long long stream_spans = 0;
  long long summary_update_spans = 0;
  long long summary_recount_spans = 0;
  long long reorder_admit_spans = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const dod::JsonValue& event = events[i];
    const std::string where = "trace: event " + std::to_string(i);
    if (!event.is_object()) return Fail(where + " is not an object");
    for (const char* key : {"name", "cat", "ph"}) {
      if (!event.Get(key).is_string()) {
        return Fail(where + ": missing string field \"" + key + "\"");
      }
    }
    if (event.Get("ph").string_value() != "X") {
      return Fail(where + ": ph is not \"X\"");
    }
    for (const char* key : {"ts", "dur", "pid", "tid"}) {
      if (!event.Get(key).is_number()) {
        return Fail(where + ": missing numeric field \"" + key + "\"");
      }
    }
    if (event.Get("ts").number_value() < 0 ||
        event.Get("dur").number_value() < 0) {
      return Fail(where + ": negative ts/dur");
    }
    if (event.Get("cat").string_value() == "task") ++task_spans;
    if (event.Get("cat").string_value() == "durability") ++durability_spans;
    if (event.Get("cat").string_value() == "shuffle") {
      const std::string& name = event.Get("name").string_value();
      if (name == "shuffle_spill") {
        ++spill_spans;
        for (const char* key : {"records", "bytes"}) {
          if (!event.Get("args").Get(key).is_number()) {
            return Fail(where + ": shuffle_spill span missing numeric arg \"" +
                        key + "\"");
          }
        }
      } else if (name == "merge") {
        ++merge_spans;
      }
    }
    if (event.Get("cat").string_value() == "stream") {
      ++stream_spans;
      const std::string& name = event.Get("name").string_value();
      if (name == "reorder_admit") {
        ++reorder_admit_spans;
        for (const char* key : {"source", "arrival", "buffered"}) {
          if (!event.Get("args").Get(key).is_number()) {
            return Fail(where + ": reorder_admit span missing numeric arg \"" +
                        key + "\"");
          }
        }
      } else if (name == "summary_update") {
        ++summary_update_spans;
        for (const char* key : {"dirty_cells", "inc_pairs", "dec_pairs"}) {
          if (!event.Get("args").Get(key).is_number()) {
            return Fail(where + ": summary_update span missing numeric arg \"" +
                        key + "\"");
          }
        }
      } else if (name == "summary_recount") {
        ++summary_recount_spans;
        for (const char* key : {"recounts", "full_counts"}) {
          if (!event.Get("args").Get(key).is_number()) {
            return Fail(where +
                        ": summary_recount span missing numeric arg \"" + key +
                        "\"");
          }
        }
      }
    }
  }
  if (task_spans < min_task_spans) {
    return Fail("trace: " + std::to_string(task_spans) +
                " task spans, expected >= " + std::to_string(min_task_spans));
  }
  if (require_durability && durability_spans == 0) {
    return Fail("trace: no durability spans (checkpoint_commit / "
                "checkpoint_restore) in a run that required them");
  }
  if (require_streaming && stream_spans == 0) {
    return Fail("trace: no stream spans (stream.round) in a run that "
                "required them");
  }
  if (require_spill && spill_spans == 0) {
    return Fail("trace: no shuffle_spill spans in a run that required "
                "spilling");
  }
  // Summary rounds emit the update and re-count spans in lockstep; a run
  // with one but not the other dropped half the fast path's telemetry.
  // (A summaries-off run legitimately has neither.)
  if (require_streaming &&
      (summary_update_spans == 0) != (summary_recount_spans == 0)) {
    return Fail("trace: " + std::to_string(summary_update_spans) +
                " summary_update spans vs " +
                std::to_string(summary_recount_spans) +
                " summary_recount spans (must appear together)");
  }
  std::printf(
      "trace ok: %zu events, %lld task spans, %lld durability spans, "
      "%lld spill spans, %lld merge spans, "
      "%lld stream spans (%lld summary_update, %lld summary_recount, "
      "%lld reorder_admit)\n",
      events.size(), task_spans, durability_spans, spill_spans, merge_spans,
      stream_spans, summary_update_spans, summary_recount_spans,
      reorder_admit_spans);
  return EXIT_SUCCESS;
}

// The durability.* names the engine registers unconditionally; a metrics
// dump from a checkpointed run must carry every one of them, and must show
// actual checkpoint traffic (tasks written or resumed).
int ValidateDurabilityMetrics(const dod::JsonValue& metrics) {
  const dod::JsonValue& counters = metrics.Get("counters");
  for (const char* name :
       {"durability.checkpoint.tasks_written",
        "durability.checkpoint.tasks_resumed",
        "durability.checkpoint.bytes_written",
        "durability.checkpoint.load_failures", "durability.control.aborts",
        "durability.memory.shuffle_budget_fallbacks",
        "durability.memory.reserve_skipped"}) {
    if (!counters.Get(name).is_number()) {
      return Fail(std::string("metrics: missing durability counter \"") +
                  name + "\"");
    }
  }
  const dod::JsonValue& peak =
      metrics.Get("gauges").Get("durability.memory.peak_bytes");
  if (!peak.Get("count").is_number() || !peak.Get("max").is_number()) {
    return Fail("metrics: missing gauge \"durability.memory.peak_bytes\"");
  }
  const dod::JsonValue& write_seconds =
      metrics.Get("histograms").Get("durability.checkpoint.write_seconds");
  if (!write_seconds.Get("count").is_number() ||
      !write_seconds.Get("sum").is_number() ||
      !write_seconds.Get("buckets").is_array()) {
    return Fail(
        "metrics: histogram \"durability.checkpoint.write_seconds\" "
        "malformed");
  }
  const double written =
      counters.Get("durability.checkpoint.tasks_written").number_value();
  const double resumed =
      counters.Get("durability.checkpoint.tasks_resumed").number_value();
  if (written + resumed <= 0.0) {
    return Fail("metrics: no checkpoint traffic (tasks_written + "
                "tasks_resumed == 0) in a run that required durability");
  }
  std::printf("durability ok: %.0f tasks written, %.0f resumed\n", written,
              resumed);
  return EXIT_SUCCESS;
}

// The mr.spill.* names the engine folds in after every job; a metrics dump
// from a spilled run must carry the whole family, show actual run traffic
// (runs written AND merged back), and expose the locality-aware pool's
// worker-group gauge and steal counters.
int ValidateSpillMetrics(const dod::JsonValue& metrics) {
  const dod::JsonValue& counters = metrics.Get("counters");
  for (const char* name :
       {"mr.spill.map_tasks", "mr.spill.reduce_tasks", "mr.spill.runs_written",
        "mr.spill.bytes_written", "mr.spill.runs_merged",
        "mr.spill.bytes_read", "mr.shuffle.fallback.density",
        "mr.shuffle.fallback.budget", "mr.shuffle.fallback.spill",
        "runtime.steal.local", "runtime.steal.remote"}) {
    if (!counters.Get(name).is_number()) {
      return Fail(std::string("metrics: missing spill counter \"") + name +
                  "\"");
    }
  }
  const dod::JsonValue& groups =
      metrics.Get("gauges").Get("runtime.worker_groups");
  if (!groups.Get("count").is_number() || !groups.Get("max").is_number()) {
    return Fail("metrics: missing gauge \"runtime.worker_groups\"");
  }
  const dod::JsonValue& run_records =
      metrics.Get("histograms").Get("mr.spill.run_records");
  if (!run_records.Get("count").is_number() ||
      !run_records.Get("sum").is_number() ||
      !run_records.Get("buckets").is_array()) {
    return Fail("metrics: histogram \"mr.spill.run_records\" malformed");
  }
  const double written = counters.Get("mr.spill.runs_written").number_value();
  const double merged = counters.Get("mr.spill.runs_merged").number_value();
  if (written <= 0.0) {
    return Fail("metrics: mr.spill.runs_written == 0 in a run that required "
                "spilling");
  }
  if (merged <= 0.0) {
    return Fail("metrics: mr.spill.runs_merged == 0 — runs were written but "
                "never merged back");
  }
  std::printf("spill ok: %.0f runs written, %.0f merged, %.0f bytes\n",
              written, merged,
              counters.Get("mr.spill.bytes_written").number_value());
  return EXIT_SUCCESS;
}

// The stream.* names the streaming service records every round; a metrics
// dump from a streaming run must carry the whole family and show at least
// one completed round.
int ValidateStreamingMetrics(const dod::JsonValue& metrics) {
  const dod::JsonValue& counters = metrics.Get("counters");
  for (const char* name :
       {"stream.rounds", "stream.cells_redetected", "stream.delta_flagged",
        "stream.delta_cleared", "stream.summary.rounds",
        "stream.summary.rounds_bypassed", "stream.summary.insert_count_pairs",
        "stream.summary.expiry_count_pairs",
        "stream.summary.full_count_points",
        "stream.summary.recount_points", "stream.late_dropped",
        "stream.watermark.advances", "stream.watermark.reorder_admitted"}) {
    if (!counters.Get(name).is_number()) {
      return Fail(std::string("metrics: missing streaming counter \"") +
                  name + "\"");
    }
  }
  for (const char* name :
       {"stream.resident_points", "stream.summary.saturated_points",
        "stream.watermark.buffered_blocks", "stream.watermark.sources"}) {
    const dod::JsonValue& gauge = metrics.Get("gauges").Get(name);
    if (!gauge.Get("count").is_number() || !gauge.Get("max").is_number()) {
      return Fail(std::string("metrics: missing gauge \"") + name + "\"");
    }
  }
  // A run that dropped late blocks must have been under a watermark policy
  // — reorder admissions account for every admitted round there.
  const double late_dropped =
      counters.Get("stream.late_dropped").number_value();
  const double reorder_admitted =
      counters.Get("stream.watermark.reorder_admitted").number_value();
  if (late_dropped > 0.0 && reorder_admitted <= 0.0) {
    return Fail("metrics: stream.late_dropped > 0 without any "
                "stream.watermark.reorder_admitted rounds");
  }
  for (const char* name :
       {"stream.dirty_cell_fraction", "stream.round_seconds",
        "stream.summary.recount_queue"}) {
    const dod::JsonValue& histogram = metrics.Get("histograms").Get(name);
    if (!histogram.Get("count").is_number() ||
        !histogram.Get("sum").is_number() ||
        !histogram.Get("buckets").is_array()) {
      return Fail(std::string("metrics: histogram \"") + name +
                  "\" malformed");
    }
  }
  const double rounds = counters.Get("stream.rounds").number_value();
  if (rounds <= 0.0) {
    return Fail("metrics: stream.rounds == 0 in a run that required "
                "streaming");
  }
  // Every round takes exactly one of the two paths.
  const double summary_rounds =
      counters.Get("stream.summary.rounds").number_value();
  const double bypassed =
      counters.Get("stream.summary.rounds_bypassed").number_value();
  if (summary_rounds + bypassed != rounds) {
    return Fail("metrics: stream.summary.rounds (" +
                std::to_string(summary_rounds) + ") + rounds_bypassed (" +
                std::to_string(bypassed) + ") != stream.rounds (" +
                std::to_string(rounds) + ")");
  }
  std::printf(
      "streaming ok: %.0f rounds (%.0f summary, %.0f re-detect), %.0f cells "
      "re-detected, %.0f reorder-admitted, %.0f late-dropped\n",
      rounds, summary_rounds, bypassed,
      counters.Get("stream.cells_redetected").number_value(),
      reorder_admitted, late_dropped);
  return EXIT_SUCCESS;
}

int ValidateMetrics(const dod::JsonValue& doc, long long min_partitions,
                    bool require_durability, bool require_streaming,
                    bool require_spill) {
  if (!doc.is_object()) return Fail("metrics: top level is not an object");
  const dod::JsonValue& metrics = doc.Get("metrics");
  if (!metrics.is_object()) return Fail("metrics: missing metrics object");
  for (const char* section : {"counters", "gauges", "histograms"}) {
    if (!metrics.Get(section).is_object()) {
      return Fail(std::string("metrics: missing section \"") + section +
                  "\"");
    }
  }
  if (metrics.Get("counters").object().empty()) {
    return Fail("metrics: no counters recorded");
  }
  for (const auto& [name, value] : metrics.Get("counters").object()) {
    if (!value.is_number()) {
      return Fail("metrics: counter \"" + name + "\" is not a number");
    }
  }
  for (const auto& [name, value] : metrics.Get("histograms").object()) {
    if (!value.Get("count").is_number() || !value.Get("sum").is_number() ||
        !value.Get("buckets").is_array()) {
      return Fail("metrics: histogram \"" + name + "\" malformed");
    }
  }

  const dod::JsonValue& profiles = doc.Get("partition_profiles");
  if (!profiles.is_array()) {
    return Fail("metrics: missing partition_profiles array");
  }
  if (static_cast<long long>(profiles.array().size()) < min_partitions) {
    return Fail("metrics: " + std::to_string(profiles.array().size()) +
                " partition profiles, expected >= " +
                std::to_string(min_partitions));
  }
  for (size_t i = 0; i < profiles.array().size(); ++i) {
    const dod::JsonValue& profile = profiles.array()[i];
    const std::string where = "metrics: profile " + std::to_string(i);
    if (!profile.Get("algorithm").is_string()) {
      return Fail(where + ": missing algorithm");
    }
    for (const char* key :
         {"cell", "core_points", "support_points", "area", "density",
          "predicted_cost", "measured_distance_evals", "measured_seconds"}) {
      if (!profile.Get(key).is_number()) {
        return Fail(where + ": missing numeric field \"" + key + "\"");
      }
    }
    // "Populated" means the planner actually priced the partition and the
    // reducer actually measured it; empty husks fail CI.
    if (profile.Get("predicted_cost").number_value() <= 0.0) {
      return Fail(where + ": predicted_cost not populated");
    }
  }
  if (require_durability &&
      ValidateDurabilityMetrics(metrics) != EXIT_SUCCESS) {
    return EXIT_FAILURE;
  }
  if (require_spill && ValidateSpillMetrics(metrics) != EXIT_SUCCESS) {
    return EXIT_FAILURE;
  }
  if (require_streaming &&
      ValidateStreamingMetrics(metrics) != EXIT_SUCCESS) {
    return EXIT_FAILURE;
  }
  std::printf("metrics ok: %zu counters, %zu partition profiles\n",
              metrics.Get("counters").object().size(),
              profiles.array().size());
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  const dod::Result<dod::FlagParser> parsed =
      dod::FlagParser::Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed.status().ToString());
  const dod::FlagParser& flags = parsed.value();

  const std::string trace_path = flags.GetStringOr("trace", "");
  const std::string metrics_path = flags.GetStringOr("metrics", "");
  const long long min_task_spans =
      flags.GetInt("min_task_spans", 1).ValueOrDie();
  const long long min_partitions =
      flags.GetInt("min_partitions", 1).ValueOrDie();
  const bool require_durability =
      flags.GetBoolOr("require_durability", false);
  const bool require_streaming = flags.GetBoolOr("require_streaming", false);
  const bool require_spill = flags.GetBoolOr("require_spill", false);
  if (trace_path.empty() && metrics_path.empty()) {
    return Fail("nothing to do: pass --trace and/or --metrics");
  }
  const std::vector<std::string> unused = flags.UnusedFlags();
  if (!unused.empty()) return Fail("unknown flag --" + unused.front());

  if (!trace_path.empty()) {
    const dod::Result<dod::JsonValue> doc = LoadJson(trace_path);
    if (!doc.ok()) return Fail(doc.status().ToString());
    if (ValidateTrace(doc.value(), min_task_spans, require_durability,
                      require_streaming, require_spill) != EXIT_SUCCESS) {
      return EXIT_FAILURE;
    }
  }
  if (!metrics_path.empty()) {
    const dod::Result<dod::JsonValue> doc = LoadJson(metrics_path);
    if (!doc.ok()) return Fail(doc.status().ToString());
    if (ValidateMetrics(doc.value(), min_partitions, require_durability,
                        require_streaming, require_spill) != EXIT_SUCCESS) {
      return EXIT_FAILURE;
    }
  }
  return EXIT_SUCCESS;
}
